//===- tests/sampling/SamplerDeterminismTest.cpp - Report determinism ----===//
///
/// \file
/// The sampler satellite of the determinism contract: everything the
/// monitor consumes is canonical (addresses, event counts), so the same
/// seed and workload produce a byte-identical region report no matter how
/// many sweep workers ran the grid. These tests run real simulations with
/// Sampling on at --jobs 1 and --jobs 4 and compare every field the
/// report carries.
///
//===----------------------------------------------------------------------===//

#include "experiments/Measure.h"
#include "experiments/SweepRunner.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

using namespace ddm;

namespace {

SimulationOptions sampledOptions() {
  SimulationOptions Options;
  Options.Scale = 0.05;
  Options.WarmupTx = 1;
  Options.MeasureTx = 2;
  Options.Sampling = true;
  Options.Sampler.SampleInterval = 8;
  Options.Sampler.WindowEvents = 512;
  return Options;
}

void expectSameRegions(const std::vector<SamplerRegion> &A,
                       const std::vector<SamplerRegion> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Start, B[I].Start) << "region " << I;
    EXPECT_EQ(A[I].End, B[I].End) << "region " << I;
    EXPECT_EQ(A[I].WindowSamples, B[I].WindowSamples) << "region " << I;
    EXPECT_EQ(A[I].Heat, B[I].Heat) << "region " << I; // Bitwise equal.
    EXPECT_EQ(A[I].AgeWindows, B[I].AgeWindows) << "region " << I;
    EXPECT_EQ(A[I].TotalSamples, B[I].TotalSamples) << "region " << I;
    for (unsigned C = 0; C < SamplerRegion::SizeClasses; ++C)
      EXPECT_EQ(A[I].WidthClassSamples[C], B[I].WidthClassSamples[C])
          << "region " << I << " class " << C;
  }
}

void expectSameSnapshots(const std::vector<SamplerSnapshot> &A,
                         const std::vector<SamplerSnapshot> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Phase, B[I].Phase);
    EXPECT_EQ(A[I].Events, B[I].Events);
    EXPECT_EQ(A[I].Sampled, B[I].Sampled);
    EXPECT_EQ(A[I].Windows, B[I].Windows);
    EXPECT_EQ(A[I].Splits, B[I].Splits);
    EXPECT_EQ(A[I].Merges, B[I].Merges);
    EXPECT_EQ(A[I].Regions, B[I].Regions);
    EXPECT_EQ(A[I].MonitoredBytes, B[I].MonitoredBytes);
    EXPECT_EQ(A[I].HotBytes, B[I].HotBytes);
    EXPECT_EQ(A[I].ColdBytes, B[I].ColdBytes);
    EXPECT_EQ(A[I].MaxRegionAge, B[I].MaxRegionAge);
  }
}

void expectSameReport(const SimPoint &A, const SimPoint &B) {
  EXPECT_EQ(A.HasSampler, B.HasSampler);
  expectSameRegions(A.SamplerRegions, B.SamplerRegions);
  expectSameSnapshots(A.SamplerPhases, B.SamplerPhases);
  EXPECT_EQ(A.Perf.CyclesPerTx, B.Perf.CyclesPerTx);
  EXPECT_EQ(A.Events.total().L2Misses, B.Events.total().L2Misses);
}

TEST(SamplerDeterminismTest, SampledRunFillsTheReport) {
  SimPoint Point = simulate(phpBb(), AllocatorKind::DDmalloc, xeonLike(), 1,
                            sampledOptions());
  EXPECT_TRUE(Point.HasSampler);
  ASSERT_EQ(Point.SamplerPhases.size(), 2u); // warmup + measure.
  EXPECT_EQ(Point.SamplerPhases[0].Phase, "warmup");
  EXPECT_EQ(Point.SamplerPhases[1].Phase, "measure");
  EXPECT_GT(Point.SamplerPhases[1].Events, Point.SamplerPhases[0].Events);
  EXPECT_GT(Point.SamplerPhases[1].Sampled, 0u);
  EXPECT_GT(Point.SamplerPhases[1].Windows, 0u);
  EXPECT_FALSE(Point.SamplerRegions.empty());
  // An unsampled run carries no report.
  SimulationOptions Plain = sampledOptions();
  Plain.Sampling = false;
  SimPoint Bare =
      simulate(phpBb(), AllocatorKind::DDmalloc, xeonLike(), 1, Plain);
  EXPECT_FALSE(Bare.HasSampler);
  EXPECT_TRUE(Bare.SamplerRegions.empty());
}

// The ISSUE's satellite: same seed + same workload -> byte-identical
// region report at any --jobs.
TEST(SamplerDeterminismTest, RegionReportIdenticalAcrossJobCounts) {
  Platform P = xeonLike();
  SimulationOptions Options = sampledOptions();
  const AllocatorKind Kinds[] = {AllocatorKind::DDmalloc,
                                 AllocatorKind::Adaptive};
  WorkloadSpec W = phpBb();

  std::vector<std::function<SimPoint()>> Tasks;
  for (AllocatorKind Kind : Kinds)
    Tasks.push_back(
        [W, Kind, P, Options] { return simulate(W, Kind, P, 2, Options); });

  SweepRunner Sequential(1);
  std::vector<SimPoint> SeqPoints = Sequential.run(Tasks);
  SweepRunner Parallel(4);
  std::vector<SimPoint> ParPoints = Parallel.run(Tasks);

  ASSERT_EQ(SeqPoints.size(), Tasks.size());
  ASSERT_EQ(ParPoints.size(), Tasks.size());
  for (size_t I = 0; I < Tasks.size(); ++I) {
    SimPoint Direct = simulate(W, Kinds[I], P, 2, Options);
    expectSameReport(SeqPoints[I], ParPoints[I]);
    expectSameReport(SeqPoints[I], Direct);
    EXPECT_TRUE(SeqPoints[I].HasSampler);
    EXPECT_FALSE(SeqPoints[I].SamplerRegions.empty());
  }
}

TEST(SamplerDeterminismTest, SeedChangesTheReport) {
  SimulationOptions A = sampledOptions();
  SimulationOptions B = sampledOptions();
  B.Seed = A.Seed + 1;
  SimPoint Pa = simulate(phpBb(), AllocatorKind::DDmalloc, xeonLike(), 1, A);
  SimPoint Pb = simulate(phpBb(), AllocatorKind::DDmalloc, xeonLike(), 1, B);
  // Different seeds shuffle the access stream; the sampled totals differ.
  EXPECT_NE(Pa.SamplerPhases.back().Events, Pb.SamplerPhases.back().Events);
}

} // namespace
