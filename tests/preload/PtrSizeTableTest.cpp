//===- tests/preload/PtrSizeTableTest.cpp - Shim pointer table tests ------===//
///
/// The capture shim's pointer->size table must survive exactly the access
/// patterns a real heap throws at it: long realloc chains reusing and
/// abandoning addresses, frees of never-seen pointers, boundary clears,
/// growth well past the initial capacity, and concurrent mutation from
/// many threads.
///
//===----------------------------------------------------------------------===//

#include "preload/PtrSizeTable.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

using ddm::preload::PtrSizeTable;

namespace {

/// Fake heap addresses: realistically aligned, never dereferenced.
void *addr(uintptr_t N) { return reinterpret_cast<void *>(N * 16 + 0x10000); }

} // namespace

TEST(PtrSizeTableTest, InsertFindErase) {
  PtrSizeTable Table;
  EXPECT_TRUE(Table.insert(addr(1), 7, 128));
  uint32_t Id = 0;
  uint64_t Size = 0;
  ASSERT_TRUE(Table.find(addr(1), Id, Size));
  EXPECT_EQ(Id, 7u);
  EXPECT_EQ(Size, 128u);
  ASSERT_TRUE(Table.erase(addr(1), Id, Size));
  EXPECT_EQ(Id, 7u);
  EXPECT_EQ(Size, 128u);
  EXPECT_FALSE(Table.find(addr(1), Id, Size));
  EXPECT_EQ(Table.liveCount(), 0u);
}

TEST(PtrSizeTableTest, EraseOfUnknownPointerFails) {
  PtrSizeTable Table;
  uint32_t Id;
  uint64_t Size;
  EXPECT_FALSE(Table.erase(addr(42), Id, Size));
  Table.insert(addr(1), 0, 8);
  EXPECT_FALSE(Table.erase(addr(2), Id, Size));
  EXPECT_EQ(Table.liveCount(), 1u);
}

TEST(PtrSizeTableTest, ReallocChainKeepsIdAndTracksSize) {
  // The shim's realloc path: erase the old address, insert the new one
  // under the same id with the new size. A chain that bounces between two
  // addresses exercises tombstone reuse on every hop.
  PtrSizeTable Table;
  ASSERT_TRUE(Table.insert(addr(1), 3, 16));
  uint64_t Size = 16;
  for (int Hop = 0; Hop < 100; ++Hop) {
    void *From = addr(1 + (Hop & 1));
    void *To = addr(1 + ((Hop + 1) & 1));
    uint32_t Id;
    uint64_t OldSize;
    ASSERT_TRUE(Table.erase(From, Id, OldSize)) << Hop;
    EXPECT_EQ(Id, 3u);
    EXPECT_EQ(OldSize, Size);
    Size += 16;
    ASSERT_TRUE(Table.insert(To, Id, Size));
    EXPECT_EQ(Table.liveCount(), 1u);
  }
}

TEST(PtrSizeTableTest, ReinsertOverwrites) {
  // Same address inserted twice (a free the shim never saw): the newer
  // mapping wins and the live count does not double.
  PtrSizeTable Table;
  Table.insert(addr(5), 1, 10);
  Table.insert(addr(5), 2, 20);
  uint32_t Id;
  uint64_t Size;
  ASSERT_TRUE(Table.find(addr(5), Id, Size));
  EXPECT_EQ(Id, 2u);
  EXPECT_EQ(Size, 20u);
  EXPECT_EQ(Table.liveCount(), 1u);
}

TEST(PtrSizeTableTest, ClearForgetsEverything) {
  PtrSizeTable Table;
  for (uintptr_t I = 0; I < 1000; ++I)
    Table.insert(addr(I), static_cast<uint32_t>(I), I + 1);
  EXPECT_EQ(Table.liveCount(), 1000u);
  Table.clear();
  EXPECT_EQ(Table.liveCount(), 0u);
  uint32_t Id;
  uint64_t Size;
  for (uintptr_t I = 0; I < 1000; ++I)
    EXPECT_FALSE(Table.find(addr(I), Id, Size)) << I;
  // The table must remain fully usable after a boundary.
  EXPECT_TRUE(Table.insert(addr(3), 0, 64));
  EXPECT_EQ(Table.liveCount(), 1u);
}

TEST(PtrSizeTableTest, GrowsFarPastInitialCapacity) {
  // 64 shards x 1024 initial slots; half a million live entries forces
  // multiple growth steps in every shard.
  PtrSizeTable Table;
  constexpr uintptr_t N = 500'000;
  for (uintptr_t I = 0; I < N; ++I)
    ASSERT_TRUE(Table.insert(addr(I), static_cast<uint32_t>(I), I * 3 + 1));
  EXPECT_EQ(Table.liveCount(), N);
  for (uintptr_t I = 0; I < N; I += 997) {
    uint32_t Id;
    uint64_t Size;
    ASSERT_TRUE(Table.find(addr(I), Id, Size)) << I;
    EXPECT_EQ(Id, static_cast<uint32_t>(I));
    EXPECT_EQ(Size, I * 3 + 1);
  }
}

TEST(PtrSizeTableTest, TombstoneChurnDoesNotGrowUnbounded) {
  // Insert/erase cycling at a constant live size must stay correct while
  // tombstones accumulate and get rehashed away.
  PtrSizeTable Table;
  for (uintptr_t Round = 0; Round < 50; ++Round) {
    for (uintptr_t I = 0; I < 2000; ++I)
      ASSERT_TRUE(Table.insert(addr(Round * 2000 + I),
                               static_cast<uint32_t>(I), 8));
    uint32_t Id;
    uint64_t Size;
    for (uintptr_t I = 0; I < 2000; ++I)
      ASSERT_TRUE(Table.erase(addr(Round * 2000 + I), Id, Size));
    EXPECT_EQ(Table.liveCount(), 0u);
  }
}

TEST(PtrSizeTableTest, ConcurrentMixedMutation) {
  // Eight threads hammer disjoint address ranges; the table's only shared
  // state is the shard array, so the final live count must be exact.
  PtrSizeTable Table;
  constexpr int Threads = 8;
  constexpr uintptr_t PerThread = 20'000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Table, T] {
      uintptr_t Base = static_cast<uintptr_t>(T) * PerThread;
      for (uintptr_t I = 0; I < PerThread; ++I)
        ASSERT_TRUE(Table.insert(addr(Base + I),
                                 static_cast<uint32_t>(I), I + 1));
      uint32_t Id;
      uint64_t Size;
      // Erase the odd half.
      for (uintptr_t I = 1; I < PerThread; I += 2)
        ASSERT_TRUE(Table.erase(addr(Base + I), Id, Size));
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Table.liveCount(), Threads * PerThread / 2);
  uint32_t Id;
  uint64_t Size;
  for (int T = 0; T < Threads; ++T) {
    uintptr_t Base = static_cast<uintptr_t>(T) * PerThread;
    ASSERT_TRUE(Table.find(addr(Base + 2), Id, Size));
    EXPECT_EQ(Size, 3u);
    EXPECT_FALSE(Table.find(addr(Base + 1), Id, Size));
  }
}
