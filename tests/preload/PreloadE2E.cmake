# End-to-end check of the LD_PRELOAD capture pipeline, run under ctest:
#
#   1. capture: deterministic helper under the shim -> capture.ddmtrc
#   2. validate + summarize it with tracestat (twice; JSON must be
#      byte-identical, proving decode determinism)
#   3. re-capture and byte-compare the trace files (capture determinism)
#   4. replay it through webserver_sim's three PHP-study allocators with
#      the replayer's strict validation enabled
#   5. capture with the event-count fallback instead of the tx hooks
#      (DDMTRACE_TX_EVENTS) and validate that too
#
# Invoked as:
#   cmake -DSHIM=... -DHELPER=... -DTRACESTAT=... -DWEBSERVER_SIM=...
#         -DWORK_DIR=... -P PreloadE2E.cmake

foreach(Var SHIM HELPER TRACESTAT WEBSERVER_SIM WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked Label)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE Result
    OUTPUT_VARIABLE Output
    ERROR_VARIABLE Error)
  if(NOT Result EQUAL 0)
    message(FATAL_ERROR "${Label} failed (exit ${Result}):\n${Output}\n${Error}")
  endif()
endfunction()

# -- 1. capture under the shim (hook-delimited transactions) --------------
set(Trace "${WORK_DIR}/capture.ddmtrc")
run_checked("capture" ${CMAKE_COMMAND} -E env
  "LD_PRELOAD=${SHIM}" "DDMTRACE_OUT=${Trace}" "DDMTRACE_VERBOSE=1"
  ${HELPER})
if(NOT EXISTS "${Trace}")
  message(FATAL_ERROR "shim produced no trace at ${Trace}")
endif()

# -- 2. validate + decode determinism -------------------------------------
run_checked("tracestat" ${TRACESTAT} "${Trace}")
execute_process(COMMAND ${TRACESTAT} --json "${Trace}"
  RESULT_VARIABLE R1 OUTPUT_VARIABLE Json1 ERROR_VARIABLE E1)
execute_process(COMMAND ${TRACESTAT} --json "${Trace}"
  RESULT_VARIABLE R2 OUTPUT_VARIABLE Json2 ERROR_VARIABLE E2)
if(NOT R1 EQUAL 0 OR NOT R2 EQUAL 0)
  message(FATAL_ERROR "tracestat --json failed:\n${E1}\n${E2}")
endif()
if(NOT Json1 STREQUAL Json2)
  message(FATAL_ERROR "two decodes of the same trace disagree:\n${Json1}\n--\n${Json2}")
endif()

# -- 3. capture determinism -----------------------------------------------
set(Trace2 "${WORK_DIR}/capture2.ddmtrc")
run_checked("re-capture" ${CMAKE_COMMAND} -E env
  "LD_PRELOAD=${SHIM}" "DDMTRACE_OUT=${Trace2}"
  ${HELPER})
run_checked("capture determinism" ${CMAKE_COMMAND} -E compare_files
  "${Trace}" "${Trace2}")

# -- 4. strict replay through the study's allocators ----------------------
run_checked("replay" ${WEBSERVER_SIM} --replay-trace "${Trace}")

# -- 5. event-count fallback boundaries -----------------------------------
set(Trace3 "${WORK_DIR}/fallback.ddmtrc")
run_checked("fallback capture" ${CMAKE_COMMAND} -E env
  "LD_PRELOAD=${SHIM}" "DDMTRACE_OUT=${Trace3}" "DDMTRACE_TX_EVENTS=500"
  ${HELPER})
run_checked("fallback validate" ${TRACESTAT} "${Trace3}")
run_checked("fallback replay" ${WEBSERVER_SIM} --replay-trace "${Trace3}")

message(STATUS "preload_e2e passed")
