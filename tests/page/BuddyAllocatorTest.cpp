//===- tests/page/BuddyAllocatorTest.cpp - Buddy invariants --------------===//

#include "page/BuddyAllocator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <utility>
#include <vector>

using namespace ddm;

namespace {

TEST(BuddyAllocatorTest, SeedsAPowerOfTwoSpanAsOneBlock) {
  BuddyAllocator B(1024, 10);
  EXPECT_EQ(B.numPages(), 1024u);
  EXPECT_EQ(B.maxOrder(), 10u);
  EXPECT_EQ(B.freePageCount(), 1024u);
  EXPECT_EQ(B.largestFreeBlockPages(), 1024u);
  EXPECT_EQ(B.freeBlocksAt(10), 1u);
  EXPECT_TRUE(B.verify());
}

TEST(BuddyAllocatorTest, SplitCoalesceRoundTrip) {
  BuddyAllocator B(1024, 10);
  uint32_t Page = B.allocPages(0);
  ASSERT_NE(Page, BuddyAllocator::NoPage);
  // Carving one page out of a 1024-page block splits at every order below
  // the top, leaving one free half per order.
  EXPECT_EQ(B.totalSplits(), 10u);
  for (unsigned Order = 0; Order < 10; ++Order)
    EXPECT_EQ(B.freeBlocksAt(Order), 1u) << "order " << Order;
  EXPECT_EQ(B.freeBlocksAt(10), 0u);
  EXPECT_EQ(B.freePageCount(), 1023u);
  EXPECT_EQ(B.largestFreeBlockPages(), 512u);
  EXPECT_TRUE(B.verify());

  // The free merges all the way back up: the span is whole again.
  B.freePages(Page, 0);
  EXPECT_EQ(B.totalCoalesces(), 10u);
  EXPECT_EQ(B.freePageCount(), 1024u);
  EXPECT_EQ(B.largestFreeBlockPages(), 1024u);
  EXPECT_EQ(B.freeBlocksAt(10), 1u);
  for (unsigned Order = 0; Order < 10; ++Order)
    EXPECT_EQ(B.freeBlocksAt(Order), 0u) << "order " << Order;
  EXPECT_TRUE(B.verify());
}

TEST(BuddyAllocatorTest, MixedOrderBlocksNeverOverlapAndStayAligned) {
  BuddyAllocator B(1024, 10);
  std::vector<std::pair<uint32_t, unsigned>> Held;
  const unsigned Orders[] = {0, 3, 1, 5, 2, 0, 4, 3, 1, 6, 0, 2};
  for (unsigned Order : Orders) {
    uint32_t Page = B.allocPages(Order);
    ASSERT_NE(Page, BuddyAllocator::NoPage);
    EXPECT_EQ(Page % (1u << Order), 0u) << "block misaligned for its order";
    EXPECT_EQ(B.allocatedOrderAt(Page), Order);
    Held.emplace_back(Page, Order);
  }
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  for (auto [Page, Order] : Held)
    Ranges.emplace_back(Page, Page + (1u << Order));
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    EXPECT_LE(Ranges[I - 1].second, Ranges[I].first)
        << "blocks " << I - 1 << " and " << I << " overlap";
  EXPECT_TRUE(B.verify());

  // Free in a scrambled order; everything must coalesce back to one block.
  std::swap(Held[0], Held[7]);
  std::swap(Held[2], Held[9]);
  for (auto [Page, Order] : Held)
    B.freePages(Page, Order);
  EXPECT_EQ(B.freePageCount(), 1024u);
  EXPECT_EQ(B.largestFreeBlockPages(), 1024u);
  EXPECT_TRUE(B.verify());
}

TEST(BuddyAllocatorTest, OrderAccountingIsExact) {
  BuddyAllocator B(256, 8);
  uint32_t A0 = B.allocPages(0);
  uint32_t A1 = B.allocPages(0);
  uint32_t A2 = B.allocPages(3);
  EXPECT_EQ(B.orderStats(0).Allocs, 2u);
  EXPECT_EQ(B.orderStats(3).Allocs, 1u);
  EXPECT_EQ(B.orderStats(8).Allocs, 0u);
  B.freePages(A0, 0);
  B.freePages(A1, 0);
  B.freePages(A2, 3);
  EXPECT_EQ(B.orderStats(0).Frees, 2u);
  EXPECT_EQ(B.orderStats(3).Frees, 1u);
  // Every split must have been undone by exactly one coalesce.
  EXPECT_EQ(B.totalSplits(), B.totalCoalesces());
  EXPECT_EQ(B.freePageCount(), 256u);
  EXPECT_TRUE(B.verify());
}

TEST(BuddyAllocatorTest, OrderForRoundsUpToThePowerOfTwo) {
  EXPECT_EQ(BuddyAllocator::orderFor(1), 0u);
  EXPECT_EQ(BuddyAllocator::orderFor(2), 1u);
  EXPECT_EQ(BuddyAllocator::orderFor(3), 2u);
  EXPECT_EQ(BuddyAllocator::orderFor(4), 2u);
  EXPECT_EQ(BuddyAllocator::orderFor(5), 3u);
  EXPECT_EQ(BuddyAllocator::orderFor(1024), 10u);
  EXPECT_EQ(BuddyAllocator::orderFor(1025), 11u);
}

TEST(BuddyAllocatorTest, NonPowerOfTwoSpanSeedsMaximalAlignedBlocks) {
  // 1000 = 512 + 256 + 128 + 64 + 32 + 8: six seed blocks, none larger
  // than 512 pages, and no coalescing past the seed boundaries.
  BuddyAllocator B(1000, 10);
  EXPECT_EQ(B.freePageCount(), 1000u);
  EXPECT_EQ(B.largestFreeBlockPages(), 512u);
  EXPECT_EQ(B.freeBlocksAt(9), 1u);
  EXPECT_EQ(B.freeBlocksAt(8), 1u);
  EXPECT_EQ(B.freeBlocksAt(3), 1u);
  EXPECT_TRUE(B.verify());

  // Drain the whole span one page at a time, then refill it.
  std::vector<uint32_t> Pages;
  for (uint32_t Page = B.allocPages(0); Page != BuddyAllocator::NoPage;
       Page = B.allocPages(0))
    Pages.push_back(Page);
  EXPECT_EQ(Pages.size(), 1000u);
  EXPECT_EQ(B.freePageCount(), 0u);
  EXPECT_EQ(B.largestFreeBlockPages(), 0u);
  EXPECT_TRUE(B.verify());
  for (uint32_t Page : Pages)
    B.freePages(Page, 0);
  EXPECT_EQ(B.freePageCount(), 1000u);
  // The seed tiling is restored exactly: blocks never merged past it.
  EXPECT_EQ(B.largestFreeBlockPages(), 512u);
  EXPECT_TRUE(B.verify());
}

TEST(BuddyAllocatorTest, ExhaustionReturnsNoPage) {
  BuddyAllocator B(16, 4);
  EXPECT_NE(B.allocPages(4), BuddyAllocator::NoPage);
  EXPECT_EQ(B.allocPages(0), BuddyAllocator::NoPage);
  EXPECT_EQ(B.allocPages(4), BuddyAllocator::NoPage);
}

TEST(BuddyAllocatorTest, AllocatedOrderAtRecoversTheBlockOrder) {
  BuddyAllocator B(64, 6);
  uint32_t Big = B.allocPages(2);
  ASSERT_NE(Big, BuddyAllocator::NoPage);
  EXPECT_EQ(B.allocatedOrderAt(Big), 2);
  // Interior pages of the block carry no order mark.
  EXPECT_EQ(B.allocatedOrderAt(Big + 1), BuddyAllocator::NoOrder);
  B.freePages(Big, 2);
  EXPECT_EQ(B.allocatedOrderAt(Big), BuddyAllocator::NoOrder);
}

TEST(BuddyAllocatorDeathTest, FreeAtTheWrongOrderDies) {
  BuddyAllocator B(64, 6);
  uint32_t Page = B.allocPages(1);
  ASSERT_NE(Page, BuddyAllocator::NoPage);
  EXPECT_DEATH(B.freePages(Page, 2), "not allocated at this order");
  EXPECT_DEATH(B.freePages(Page + 1, 1), "not allocated at this order");
}

TEST(BuddyAllocatorDeathTest, DoubleFreeDies) {
  BuddyAllocator B(64, 6);
  uint32_t Page = B.allocPages(0);
  ASSERT_NE(Page, BuddyAllocator::NoPage);
  B.freePages(Page, 0);
  EXPECT_DEATH(B.freePages(Page, 0), "not allocated at this order");
}

} // namespace
