//===- tests/page/PageBackendTest.cpp - Buddy backend + BackedSpan -------===//

#include "page/PageBackend.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <cstring>
#include <utility>
#include <vector>

using namespace ddm;

namespace {

std::shared_ptr<BuddyPageBackend> smallBackend(size_t Pages = 64) {
  BuddyBackendConfig Config;
  Config.ReserveBytes = Pages * 4096;
  return std::make_shared<BuddyPageBackend>(Config);
}

TEST(PageBackendTest, AcquireReleaseRoundTripUpdatesStats) {
  auto Backend = smallBackend();
  PageBackendStats Fresh = Backend->stats();
  EXPECT_EQ(Fresh.PagesAcquired, 0u);
  EXPECT_EQ(Fresh.FreePages, 64u);
  EXPECT_EQ(Fresh.LargestFreeRunPages, 64u);
  EXPECT_DOUBLE_EQ(Fresh.externalFragmentation(), 0.0);

  std::byte *Span = Backend->acquire(2 * 4096, 4096);
  ASSERT_NE(Span, nullptr);
  EXPECT_TRUE(Backend->contains(Span));
  std::memset(Span, 0xAB, 2 * 4096); // The memory is real and usable.

  PageBackendStats Held = Backend->stats();
  EXPECT_EQ(Held.PagesAcquired, 2u);
  EXPECT_EQ(Held.PagesLive, 2u);
  EXPECT_EQ(Held.PeakPagesLive, 2u);
  EXPECT_EQ(Held.FreePages, 62u);

  Backend->release(Span, 2 * 4096);
  PageBackendStats After = Backend->stats();
  EXPECT_EQ(After.PagesReclaimed, 2u);
  EXPECT_EQ(After.PagesLive, 0u);
  EXPECT_EQ(After.PeakPagesLive, 2u); // High water sticks.
  EXPECT_EQ(After.FreePages, 64u);
  EXPECT_EQ(After.LargestFreeRunPages, 64u);
}

TEST(PageBackendTest, AlignmentIsHonored) {
  BuddyBackendConfig Config;
  Config.ReserveBytes = 4ull * 1024 * 1024;
  BuddyPageBackend Backend(Config);
  for (size_t Alignment : {size_t(4096), size_t(64) * 1024,
                           size_t(1024) * 1024}) {
    std::byte *Span = Backend.acquire(4096, Alignment);
    ASSERT_NE(Span, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Span) % Alignment, 0u)
        << "alignment " << Alignment;
    Backend.release(Span, 4096);
  }
}

TEST(PageBackendTest, ExhaustionReturnsNullUntilPagesComeBack) {
  auto Backend = smallBackend(16);
  std::byte *All = Backend->acquire(16 * 4096, 4096);
  ASSERT_NE(All, nullptr);
  EXPECT_EQ(Backend->acquire(4096, 4096), nullptr);
  // Larger than the whole reservation is never satisfiable.
  EXPECT_EQ(Backend->acquire(1ull << 30, 4096), nullptr);
  Backend->release(All, 16 * 4096);
  std::byte *Again = Backend->acquire(4096, 4096);
  EXPECT_NE(Again, nullptr);
  Backend->release(Again, 4096);
}

TEST(PageBackendTest, ExternalFragmentationReflectsShatteredFreeSpace) {
  auto Backend = smallBackend(64);
  // Pin every other page so the free space cannot form one large run.
  std::vector<std::byte *> Pinned;
  std::vector<std::byte *> Released;
  for (unsigned I = 0; I < 32; ++I) {
    std::byte *A = Backend->acquire(4096, 4096);
    std::byte *B = Backend->acquire(4096, 4096);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);
    Pinned.push_back(A);
    Released.push_back(B);
  }
  for (std::byte *Span : Released)
    Backend->release(Span, 4096);
  PageBackendStats Shattered = Backend->stats();
  EXPECT_EQ(Shattered.FreePages, 32u);
  EXPECT_LT(Shattered.LargestFreeRunPages, 32u);
  EXPECT_GT(Shattered.externalFragmentation(), 0.0);
  // Releasing the pins coalesces everything back into one run.
  for (std::byte *Span : Pinned)
    Backend->release(Span, 4096);
  PageBackendStats Whole = Backend->stats();
  EXPECT_EQ(Whole.LargestFreeRunPages, 64u);
  EXPECT_DOUBLE_EQ(Whole.externalFragmentation(), 0.0);
  EXPECT_GT(Whole.Coalesces, 0u);
}

TEST(PageBackendTest, PageAcquireFaultSiteFires) {
  auto Backend = smallBackend();
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,page_acquire:every=1", Plan, Error))
      << Error;
  FaultInjector::instance().arm(Plan);
  EXPECT_EQ(Backend->acquire(4096, 4096), nullptr);
  EXPECT_GT(FaultInjector::instance().counters(FaultSite::PageAcquire).Fired,
            0u);
  FaultInjector::instance().disarm();
  std::byte *Span = Backend->acquire(4096, 4096);
  EXPECT_NE(Span, nullptr);
  Backend->release(Span, 4096);
}

TEST(PageBackendTest, BackedSpanReturnsItsPagesOnDestruction) {
  auto Backend = smallBackend();
  {
    BackedSpan Span = BackedSpan::create(8 * 4096, 4096, Backend);
    EXPECT_NE(Span.base(), nullptr);
    EXPECT_EQ(Span.size(), 8u * 4096);
    EXPECT_TRUE(Span.contains(Span.base()));
    EXPECT_TRUE(Span.contains(Span.base() + Span.size() - 1));
    EXPECT_FALSE(Span.contains(Span.base() + Span.size()));
    EXPECT_EQ(Backend->stats().PagesLive, 8u);
  }
  PageBackendStats After = Backend->stats();
  EXPECT_EQ(After.PagesLive, 0u);
  EXPECT_EQ(After.PagesReclaimed, 8u);
}

TEST(PageBackendTest, BackedSpanMoveTransfersOwnership) {
  auto Backend = smallBackend();
  BackedSpan Outer;
  {
    BackedSpan Inner = BackedSpan::create(4096, 4096, Backend);
    Outer = std::move(Inner);
  }
  // The moved-from span died without releasing: the pages follow Outer.
  EXPECT_EQ(Backend->stats().PagesLive, 1u);
  Outer = BackedSpan();
  EXPECT_EQ(Backend->stats().PagesLive, 0u);
}

TEST(PageBackendTest, BackedSpanPrivatePathWorksWithoutABackend) {
  std::optional<BackedSpan> Span =
      BackedSpan::tryCreate(64 * 1024, 4096, nullptr);
  ASSERT_TRUE(Span.has_value());
  ASSERT_NE(Span->base(), nullptr);
  std::memset(Span->base(), 0x5C, Span->size());
  EXPECT_TRUE(Span->contains(Span->base()));
}

TEST(PageBackendTest, TryCreateReportsExhaustion) {
  auto Backend = smallBackend(16);
  std::string Error;
  std::optional<BackedSpan> Span =
      BackedSpan::tryCreate(1ull << 30, 4096, Backend, &Error);
  EXPECT_FALSE(Span.has_value());
  EXPECT_NE(Error.find("exhausted"), std::string::npos) << Error;
}

TEST(PageBackendTest, ResidencyModelSurvivesReleaseUntilAdviseOut) {
  auto Backend = smallBackend();
  std::byte *A = Backend->acquire(4 * 4096, 4096);
  std::byte *B = Backend->acquire(2 * 4096, 4096);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  PageBackendStats Held = Backend->stats();
  EXPECT_EQ(Held.ResidentPages, 6u);
  EXPECT_EQ(Held.PeakResidentPages, 6u);
  EXPECT_EQ(Held.residentBytes(), 6u * 4096);

  // Freeing memory does not shrink RSS: the pages stay resident.
  Backend->release(A, 4 * 4096);
  PageBackendStats Freed = Backend->stats();
  EXPECT_EQ(Freed.PagesLive, 2u);
  EXPECT_EQ(Freed.ResidentPages, 6u);

  // adviseOut models the madvise: only the free-but-resident pages drop.
  uint64_t Dropped = Backend->adviseOut();
  EXPECT_EQ(Dropped, 4u * 4096);
  PageBackendStats Advised = Backend->stats();
  EXPECT_EQ(Advised.ResidentPages, 2u);
  EXPECT_EQ(Advised.PeakResidentPages, 6u); // High water sticks.
  EXPECT_EQ(Advised.AdvisedOutPages, 4u);

  // A second give-back with nothing free-and-resident drops nothing.
  EXPECT_EQ(Backend->adviseOut(), 0u);

  // Re-acquired pages fault back in and count toward RSS again.
  std::byte *C = Backend->acquire(4 * 4096, 4096);
  ASSERT_NE(C, nullptr);
  PageBackendStats Refaulted = Backend->stats();
  EXPECT_EQ(Refaulted.ResidentPages, 6u);
  EXPECT_EQ(Refaulted.AdvisedOutPages, 4u); // Cumulative.
  Backend->release(B, 2 * 4096);
  Backend->release(C, 4 * 4096);
}

TEST(PageBackendDeathTest, ReleaseOfASpanItDidNotHandOutDies) {
  auto Backend = smallBackend();
  std::byte *Span = Backend->acquire(2 * 4096, 4096);
  ASSERT_NE(Span, nullptr);
  // An interior page of a live block is not a block start.
  EXPECT_DEATH(Backend->release(Span + 4096, 4096), "did not hand out");
  Backend->release(Span, 2 * 4096);
  EXPECT_DEATH(Backend->release(Span, 2 * 4096), "did not hand out");
}

TEST(PageBackendDeathTest, ReleaseLargerThanTheSpanDies) {
  auto Backend = smallBackend();
  std::byte *Span = Backend->acquire(4096, 4096);
  ASSERT_NE(Span, nullptr);
  EXPECT_DEATH(Backend->release(Span, 16 * 4096), "larger than the span");
  Backend->release(Span, 4096);
}

} // namespace
