//===- tests/page/SlabAllocatorTest.cpp - Slab lifecycle + magazines -----===//

#include "page/SlabAllocator.h"

#include "core/SizeClasses.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace ddm;

namespace {

constexpr size_t TestHeapBytes = 8ull * 1024 * 1024;

SlabConfig smallMagazines() {
  SlabConfig C;
  C.HeapReserveBytes = TestHeapBytes;
  // Tiny magazines so tests reach the central after a couple of operations.
  C.MagazineCapacity = 2;
  C.RefillBatch = 1;
  return C;
}

TEST(SlabAllocatorTest, RoundTripSmallObject) {
  SlabAllocator A(smallMagazines());
  void *P = A.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(A.owns(P));
  std::memset(P, 0x7E, 64);
  EXPECT_EQ(A.usableSize(P), 64u);
  A.deallocate(P);
  EXPECT_EQ(A.stats().MallocCalls, 1u);
  EXPECT_EQ(A.stats().FreeCalls, 1u);
}

// The full slab lifecycle: a grown slab is partial, a drained slab is full
// and off the lists, a refilled slab is empty — one empty is kept as the
// class reserve, the rest reap back to the buddy, and shrink() reaps the
// reserve too.
TEST(SlabAllocatorTest, LifecyclePartialFullEmptyReap) {
  auto Central = createSlabCentral(TestHeapBytes);
  SizeClassMap Map(8 * 1024);
  const unsigned Class = Map.classFor(64);
  const uint32_t Cap = Central->SlabCapacity[Class];
  ASSERT_GE(Cap, 8u);

  {
    SlabConfig C = smallMagazines();
    C.Central = Central;
    SlabAllocator A(C);
    EXPECT_EQ(A.partialSlabCount(Class), 0u);
    EXPECT_FALSE(A.hasEmptyReserve(Class));

    std::vector<void *> Objects;
    Objects.push_back(A.allocate(64));
    ASSERT_NE(Objects.back(), nullptr);
    EXPECT_EQ(A.partialSlabCount(Class), 1u); // Fresh slab: partial.

    // Drain the first slab completely: it leaves the partial list.
    while (Objects.size() < Cap) {
      Objects.push_back(A.allocate(64));
      ASSERT_NE(Objects.back(), nullptr);
    }
    EXPECT_EQ(A.partialSlabCount(Class), 0u);
    EXPECT_EQ(Central->SlabsCreated, 1u);

    // Two more slabs' worth keeps exactly one partial at the end.
    while (Objects.size() < size_t(2) * Cap + 1) {
      Objects.push_back(A.allocate(64));
      ASSERT_NE(Objects.back(), nullptr);
    }
    EXPECT_EQ(Central->SlabsCreated, 3u);
    EXPECT_EQ(A.partialSlabCount(Class), 1u);

    for (void *P : Objects)
      A.deallocate(P);
    // The allocator's destructor flushes its magazine stock to the
    // central, emptying every slab.
  }

  // One empty slab stays as the class reserve; the other two were reaped.
  SlabConfig C2;
  C2.Central = Central;
  SlabAllocator B(C2);
  EXPECT_TRUE(B.hasEmptyReserve(Class));
  EXPECT_EQ(B.partialSlabCount(Class), 0u);
  EXPECT_EQ(Central->SlabsReaped, 2u);
  const uint64_t SlabPages = uint64_t(1) << Central->SlabOrder[Class];
  EXPECT_EQ(B.pageStats().PagesLive, SlabPages);

  // shrink() reaps the reserve: the whole heap is free again.
  EXPECT_EQ(B.shrink(), SlabPages);
  EXPECT_FALSE(B.hasEmptyReserve(Class));
  PageBackendStats S = B.pageStats();
  EXPECT_EQ(S.PagesLive, 0u);
  EXPECT_EQ(S.FreePages, uint64_t(Central->NumPages));
  EXPECT_EQ(S.PagesAcquired, S.PagesReclaimed);
}

TEST(SlabAllocatorTest, MagazinesBatchCentralTraffic) {
  SlabConfig C;
  C.HeapReserveBytes = TestHeapBytes;
  C.MagazineCapacity = 64;
  C.RefillBatch = 16;
  SlabAllocator A(C);
  SizeClassMap Map(8 * 1024);
  const unsigned Class = Map.classFor(128);

  void *P1 = A.allocate(128);
  ASSERT_NE(P1, nullptr);
  // One refill pulled a whole batch; the allocation popped one object.
  EXPECT_EQ(A.magazineCount(Class), 15u);
  void *P2 = A.allocate(128);
  ASSERT_NE(P2, nullptr);
  EXPECT_EQ(A.magazineCount(Class), 14u);
  A.deallocate(P2);
  A.deallocate(P1);
  EXPECT_EQ(A.magazineCount(Class), 16u);
  EXPECT_EQ(A.central()->SlabsCreated, 1u);
}

TEST(SlabAllocatorTest, LargeObjectsTakeWholeBuddyBlocks) {
  SlabConfig C;
  C.HeapReserveBytes = TestHeapBytes;
  SlabAllocator A(C);
  const uint64_t LiveBefore = A.pageStats().PagesLive;

  void *P = A.allocate(100 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(A.owns(P));
  std::memset(P, 0x11, 100 * 1024);
  // 100 KB rounds to the next power-of-two block: 32 pages (128 KB).
  EXPECT_EQ(A.usableSize(P), 128u * 1024);
  EXPECT_EQ(A.pageStats().PagesLive, LiveBefore + 32);

  A.deallocate(P);
  PageBackendStats S = A.pageStats();
  EXPECT_EQ(S.PagesLive, LiveBefore);
  EXPECT_GE(S.PagesReclaimed, 32u);
}

TEST(SlabAllocatorTest, ReallocatePreservesContentAndReusesInPlace) {
  SlabAllocator A(smallMagazines());
  void *P = A.allocate(40);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(A.usableSize(P), 40u);
  std::memset(P, 0x3D, 40);

  // Shrinking within the same size class keeps the object in place.
  void *Same = A.reallocate(P, 40, 38);
  EXPECT_EQ(Same, P);

  void *Grown = A.reallocate(Same, 38, 100);
  ASSERT_NE(Grown, nullptr);
  EXPECT_NE(Grown, P);
  for (size_t I = 0; I < 38; ++I)
    EXPECT_EQ(reinterpret_cast<unsigned char *>(Grown)[I], 0x3D) << I;
  A.deallocate(Grown);
}

TEST(SlabAllocatorTest, ExhaustionReturnsNullptrAndRecovers) {
  SlabConfig C = smallMagazines();
  C.HeapReserveBytes = 256 * 1024; // 64 pages.
  SlabAllocator A(C);

  std::vector<void *> Objects;
  for (;;) {
    void *P = A.allocate(6000);
    if (!P)
      break;
    Objects.push_back(P);
  }
  EXPECT_GT(Objects.size(), 4u);
  // Large requests fail cleanly too.
  EXPECT_EQ(A.allocate(1024 * 1024), nullptr);

  for (void *P : Objects)
    A.deallocate(P);
  void *Again = A.allocate(6000);
  EXPECT_NE(Again, nullptr);
  A.deallocate(Again);
}

TEST(SlabAllocatorTest, SlabGrowFaultSiteFires) {
  SlabAllocator A(smallMagazines());
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,slab_grow:every=1", Plan, Error))
      << Error;
  FaultInjector::instance().arm(Plan);
  EXPECT_EQ(A.allocate(64), nullptr);         // New slab blocked.
  EXPECT_EQ(A.allocate(100 * 1024), nullptr); // Large run blocked.
  EXPECT_GE(FaultInjector::instance().counters(FaultSite::SlabGrow).Fired, 2u);
  FaultInjector::instance().disarm();
  void *P = A.allocate(64);
  EXPECT_NE(P, nullptr);
  A.deallocate(P);
}

TEST(SlabAllocatorTest, PrivateCentralDrawsFromAPageBackend) {
  auto Backend = createBuddyBackend(32ull * 1024 * 1024);
  const uint64_t HeapPages = TestHeapBytes / 4096;
  {
    SlabConfig C = smallMagazines();
    C.Backend = Backend;
    SlabAllocator A(C);
    void *P = A.allocate(64);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(Backend->contains(P));
    A.deallocate(P);
    EXPECT_EQ(Backend->stats().PagesLive, HeapPages);
  }
  // A destroyed allocator is a restarted process: the whole heap span
  // returns to the page economy.
  PageBackendStats S = Backend->stats();
  EXPECT_EQ(S.PagesLive, 0u);
  EXPECT_EQ(S.PagesReclaimed, HeapPages);
}

// Four threads, each with its own magazines over one shared central,
// allocating/stamping/verifying/freeing concurrently. Any lost or doubly
// handed-out object shows up as a stamp mismatch.
TEST(SlabAllocatorTest, SharedCentralConcurrentSoak) {
  auto Central = createSlabCentral(64ull * 1024 * 1024);
  constexpr unsigned Threads = 4;
  constexpr unsigned Rounds = 4000;
  std::atomic<bool> Corrupted{false};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SlabConfig C;
      C.Central = Central;
      SlabAllocator A(C);
      const size_t Sizes[] = {16, 64, 256, 1024, 6000};
      std::vector<std::pair<void *, uint64_t>> Held;
      for (unsigned R = 0; R < Rounds; ++R) {
        size_t Size = Sizes[R % 5];
        void *P = A.allocate(Size);
        if (!P)
          continue;
        uint64_t Stamp = (uint64_t(T) << 32) | R;
        std::memcpy(P, &Stamp, sizeof(Stamp));
        Held.emplace_back(P, Stamp);
        if (Held.size() >= 32 || R + 1 == Rounds) {
          for (auto &[Ptr, Expected] : Held) {
            uint64_t Got;
            std::memcpy(&Got, Ptr, sizeof(Got));
            if (Got != Expected)
              Corrupted = true;
            A.deallocate(Ptr);
          }
          Held.clear();
        }
      }
      for (auto &[Ptr, Expected] : Held) {
        (void)Expected;
        A.deallocate(Ptr);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_FALSE(Corrupted.load());
  // Every magazine flushed on destruction: nothing stays live except the
  // per-class empty reserves (five size classes touched, slabs of at most
  // 2^MaxSlabOrder pages each).
  SlabConfig C;
  C.Central = Central;
  SlabAllocator Probe(C);
  PageBackendStats S = Probe.pageStats();
  EXPECT_EQ(S.PagesAcquired - S.PagesReclaimed, S.PagesLive);
  EXPECT_LE(S.PagesLive, 5u * (1u << SlabCentral::MaxSlabOrder));
}

TEST(SlabAllocatorDeathTest, FreeAllAborts) {
  SlabAllocator A(smallMagazines());
  EXPECT_DEATH(A.freeAll(), "no bulk free");
}

} // namespace
