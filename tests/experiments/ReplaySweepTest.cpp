//===- tests/experiments/ReplaySweepTest.cpp - Sharded replay determinism -===//
///
/// The property the fleet-replay pipeline stands on: merged metrics of a
/// sharded parallel replay are a pure function of the shard list —
/// byte-identical JSON at any job count and under either reader — and a
/// broken shard surfaces as a per-shard diagnostic, not a poisoned
/// merge.
///
//===----------------------------------------------------------------------===//

#include "experiments/ReplaySweep.h"
#include "trace/TraceSynthesizer.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_sweep_" + Name;
}

/// Synthesizes a small 4-shard fleet from one generated source trace.
std::vector<std::string> makeShards(const std::string &Tag) {
  std::string Source = tempPath(Tag + "_src") + TraceFileSuffix;
  TraceWriter Writer;
  TraceMeta Meta{"sweep-src", 1.0, 5};
  EXPECT_TRUE(Writer.open(Source, Meta).ok());
  for (int Tx = 0; Tx < 6; ++Tx) {
    for (uint32_t I = 0; I < 10; ++I) {
      TraceEvent E;
      E.Op = TraceOp::Alloc;
      E.Id = I;
      E.Size = 48 + 16 * I;
      Writer.append(E);
    }
    for (uint32_t I = 0; I < 10; ++I) {
      TraceEvent E;
      E.Op = TraceOp::Free;
      E.Id = I;
      Writer.append(E);
    }
    TraceEvent End;
    End.Op = TraceOp::EndTx;
    Writer.append(End);
  }
  EXPECT_TRUE(Writer.finish().ok());

  SynthSpec Spec;
  Spec.Sources = {{Source, 1}};
  Spec.Workers = 16;
  Spec.Transactions = 80;
  Spec.Shards = 4;
  Spec.Seed = 9;
  SynthReport Report;
  EXPECT_TRUE(synthesizeTrace(Spec, tempPath(Tag), Report).ok());
  std::remove(Source.c_str());
  return Report.ShardPaths;
}

void removeAll(const std::vector<std::string> &Paths) {
  for (const std::string &P : Paths)
    std::remove(P.c_str());
}

TEST(ReplaySweepTest, MergedMetricsIdenticalAtAnyJobCount) {
  std::vector<std::string> Shards = makeShards("jobs");
  ReplaySweepResult Serial = replayShardsParallel(Shards, 1);
  ReplaySweepResult Par4 = replayShardsParallel(Shards, 4);
  ReplaySweepResult ParAll = replayShardsParallel(Shards, 0);
  ASSERT_TRUE(Serial.ok()) << Serial.firstError();
  ASSERT_TRUE(Par4.ok()) << Par4.firstError();
  ASSERT_TRUE(ParAll.ok()) << ParAll.firstError();
  EXPECT_GT(Serial.Events, 0u);
  EXPECT_GT(Serial.Transactions, 0u);
  EXPECT_EQ(Serial.mergedMetricsJson(), Par4.mergedMetricsJson());
  EXPECT_EQ(Serial.mergedMetricsJson(), ParAll.mergedMetricsJson());
  removeAll(Shards);
}

TEST(ReplaySweepTest, ReaderKindDoesNotChangeTheMerge) {
  std::vector<std::string> Shards = makeShards("reader");
  ReplaySweepResult Mapped =
      replayShardsParallel(Shards, 2, TraceReaderKind::Mapped);
  ReplaySweepResult Streamed =
      replayShardsParallel(Shards, 2, TraceReaderKind::Streaming);
  ASSERT_TRUE(Mapped.ok()) << Mapped.firstError();
  ASSERT_TRUE(Streamed.ok()) << Streamed.firstError();
  EXPECT_EQ(Mapped.mergedMetricsJson(), Streamed.mergedMetricsJson());
  for (const ShardReplayResult &S : Mapped.Shards)
    EXPECT_EQ(S.Reader, "mmap");
  for (const ShardReplayResult &S : Streamed.Shards)
    EXPECT_EQ(S.Reader, "stream");
  removeAll(Shards);
}

TEST(ReplaySweepTest, ShardOrderIsSubmissionOrder) {
  std::vector<std::string> Shards = makeShards("order");
  ReplaySweepResult R = replayShardsParallel(Shards, 4);
  ASSERT_TRUE(R.ok()) << R.firstError();
  ASSERT_EQ(R.Shards.size(), Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    EXPECT_EQ(R.Shards[I].Path, Shards[I]);
  removeAll(Shards);
}

TEST(ReplaySweepTest, BrokenShardIsIsolated) {
  std::vector<std::string> Shards = makeShards("broken");
  // Truncate one shard mid-file; the others must still replay.
  {
    FILE *F = fopen(Shards[1].c_str(), "rb+");
    ASSERT_NE(F, nullptr);
    fseek(F, 0, SEEK_END);
    long Len = ftell(F);
    fclose(F);
    ASSERT_EQ(truncate(Shards[1].c_str(), Len / 2), 0);
  }
  ReplaySweepResult R = replayShardsParallel(Shards, 4);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.firstError().empty());
  EXPECT_FALSE(R.Shards[1].Status.ok());
  EXPECT_TRUE(R.Shards[0].Status.ok()) << R.Shards[0].Status.describe();
  EXPECT_TRUE(R.Shards[2].Status.ok());
  EXPECT_TRUE(R.Shards[3].Status.ok());
  removeAll(Shards);
}

} // namespace
