//===- tests/experiments/ShapeTest.cpp - End-to-end paper shapes ----------===//
///
/// \file
/// Integration tests asserting the paper's qualitative results end-to-end
/// through the full pipeline (workload -> runtime -> machine model). These
/// run at a reduced workload scale to stay fast; the bench binaries
/// reproduce the full-scale numbers.
///
//===----------------------------------------------------------------------===//

#include "experiments/Measure.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

SimulationOptions quickOptions() {
  SimulationOptions Options;
  Options.Scale = 0.35;
  Options.WarmupTx = 1;
  Options.MeasureTx = 2;
  Options.Seed = 1;
  return Options;
}

} // namespace

TEST(ShapeTest, RegionBeatsDefaultOnOneXeonCore) {
  // Paper Table 4: the region allocator improves every workload on 1 core.
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  SimPoint Default = simulate(W, AllocatorKind::Default, P, 1, quickOptions());
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 1, quickOptions());
  EXPECT_GT(Region.Perf.TxPerSec, Default.Perf.TxPerSec);
}

TEST(ShapeTest, RegionLosesToDefaultOnEightXeonCores) {
  // Paper's headline: at 8 Xeon cores the region allocator degrades
  // malloc-heavy workloads (up to -27.2%).
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  SimPoint Default = simulate(W, AllocatorKind::Default, P, 8, quickOptions());
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 8, quickOptions());
  EXPECT_LT(Region.Perf.TxPerSec, Default.Perf.TxPerSec);
  // And the mechanism is the bus: region saturates it.
  EXPECT_GT(Region.Perf.BusUtilization, Default.Perf.BusUtilization + 0.2);
  EXPECT_GT(Region.Perf.BusBytesPerTx, 2.0 * Default.Perf.BusBytesPerTx);
}

TEST(ShapeTest, DDmallocBestOnEightCoresBothPlatforms) {
  WorkloadSpec W = mediaWikiReadOnly();
  for (const Platform &P : {xeonLike(), niagaraLike()}) {
    SimPoint Default = simulate(W, AllocatorKind::Default, P, 8, quickOptions());
    SimPoint Region = simulate(W, AllocatorKind::Region, P, 8, quickOptions());
    SimPoint DDm = simulate(W, AllocatorKind::DDmalloc, P, 8, quickOptions());
    EXPECT_GT(DDm.Perf.TxPerSec, Default.Perf.TxPerSec) << P.Name;
    EXPECT_GT(DDm.Perf.TxPerSec, Region.Perf.TxPerSec) << P.Name;
  }
}

TEST(ShapeTest, RegionDegradationMilderOnNiagara) {
  // Paper: Niagara's bandwidth headroom keeps the region allocator
  // roughly competitive at 8 cores.
  WorkloadSpec W = mediaWikiReadOnly();
  SimPoint XeonDefault =
      simulate(W, AllocatorKind::Default, xeonLike(), 8, quickOptions());
  SimPoint XeonRegion =
      simulate(W, AllocatorKind::Region, xeonLike(), 8, quickOptions());
  SimPoint NiagaraDefault =
      simulate(W, AllocatorKind::Default, niagaraLike(), 8, quickOptions());
  SimPoint NiagaraRegion =
      simulate(W, AllocatorKind::Region, niagaraLike(), 8, quickOptions());
  double XeonDelta =
      percentOver(XeonRegion.Perf.TxPerSec, XeonDefault.Perf.TxPerSec);
  double NiagaraDelta =
      percentOver(NiagaraRegion.Perf.TxPerSec, NiagaraDefault.Perf.TxPerSec);
  EXPECT_GT(NiagaraDelta, XeonDelta + 5.0);
}

TEST(ShapeTest, MemoryManagementShareShrinksInPaperOrder) {
  // Paper Figure 6: region cuts ~85% of the default's memory-management
  // time, DDmalloc ~56%.
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  SimPoint Default = simulate(W, AllocatorKind::Default, P, 8, quickOptions());
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 8, quickOptions());
  SimPoint DDm = simulate(W, AllocatorKind::DDmalloc, P, 8, quickOptions());
  double Base = Default.Perf.MmCyclesPerTx;
  EXPECT_LT(Region.Perf.MmCyclesPerTx, 0.3 * Base);
  EXPECT_LT(DDm.Perf.MmCyclesPerTx, 0.75 * Base);
  EXPECT_GT(DDm.Perf.MmCyclesPerTx, Region.Perf.MmCyclesPerTx);
}

TEST(ShapeTest, RegionConsumesSeveralTimesMoreMemory) {
  // Paper Figure 9.
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  SimPoint Default = simulate(W, AllocatorKind::Default, P, 1, quickOptions());
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 1, quickOptions());
  SimPoint DDm = simulate(W, AllocatorKind::DDmalloc, P, 1, quickOptions());
  EXPECT_GT(Region.MeanConsumptionBytes, 2.0 * Default.MeanConsumptionBytes);
  EXPECT_LT(DDm.MeanConsumptionBytes, 2.0 * Default.MeanConsumptionBytes);
}

TEST(ShapeTest, DDmallocWinsTheRubyStudy) {
  // Paper Figures 10/11: DDmalloc beats glibc/Hoard/TCmalloc without even
  // using freeAll, and spends the least time in memory operations.
  const WorkloadSpec *W = findWorkload("rails");
  ASSERT_NE(W, nullptr);
  Platform P = xeonLike();
  SimulationOptions Options = quickOptions();
  Options.Scale = 0.1;
  Options.WarmupTx = 5;
  Options.MeasureTx = 10;

  double GlibcTps = 0, GlibcMm = 0;
  double DDmTps = 0, DDmMm = 0;
  for (AllocatorKind Kind : rubyStudyAllocatorKinds()) {
    RuntimeConfig Config;
    Config.Kind = Kind;
    Config.UseBulkFree = false;
    Config.RestartPeriodTx = 50;
    SimPoint Point = simulateRuntime(*W, Config, P, 8, Options);
    if (Kind == AllocatorKind::Glibc) {
      GlibcTps = Point.Perf.TxPerSec;
      GlibcMm = Point.Perf.MmCyclesPerTx;
    }
    if (Kind == AllocatorKind::DDmalloc) {
      DDmTps = Point.Perf.TxPerSec;
      DDmMm = Point.Perf.MmCyclesPerTx;
    }
  }
  EXPECT_GT(DDmTps, GlibcTps);
  EXPECT_LT(DDmMm, 0.5 * GlibcMm);
}

TEST(ShapeTest, ObstackIsARegionButSlowerThanOurs) {
  // Paper Section 4.1: "our own region-based allocator outperformed the
  // obstack".
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimulationOptions Options = quickOptions();
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 1, Options);
  SimPoint Obstack = simulate(W, AllocatorKind::Obstack, P, 1, Options);
  EXPECT_GE(Region.Perf.TxPerSec, Obstack.Perf.TxPerSec);
}

TEST(ShapeTest, LargePagesHelpDDmalloc) {
  // Paper Section 4.3: enabling large pages on Xeon raises DDmalloc's
  // improvement; D-TLB misses drop sharply.
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  SimulationOptions Options = quickOptions();
  SimPoint Small = simulate(W, AllocatorKind::DDmalloc, P, 8, Options);
  Options.LargePages = true;
  SimPoint Large = simulate(W, AllocatorKind::DDmalloc, P, 8, Options);
  EXPECT_GE(Large.Perf.TxPerSec, Small.Perf.TxPerSec);
  EXPECT_LT(Large.Events.total().TlbMisses,
            Small.Events.total().TlbMisses / 2);
}

TEST(ShapeTest, ScalingSaturatesForRegionButNotDDmalloc) {
  // Paper Figure 7 / Table 4: speedup from 1 to 8 cores.
  WorkloadSpec W = mediaWikiReadOnly();
  Platform P = xeonLike();
  auto SpeedupOf = [&](AllocatorKind Kind) {
    SimPoint One = simulate(W, Kind, P, 1, quickOptions());
    SimPoint Eight = simulate(W, Kind, P, 8, quickOptions());
    return Eight.Perf.TxPerSec / One.Perf.TxPerSec;
  };
  double DefaultSpeedup = SpeedupOf(AllocatorKind::Default);
  double RegionSpeedup = SpeedupOf(AllocatorKind::Region);
  double DDmSpeedup = SpeedupOf(AllocatorKind::DDmalloc);
  EXPECT_LT(RegionSpeedup, DefaultSpeedup - 1.0);
  EXPECT_GT(DDmSpeedup, RegionSpeedup);
}
