//===- tests/experiments/SweepRunnerTest.cpp - Parallel sweep contract ----===//
///
/// \file
/// SweepRunner's contract: results land in submission order regardless of
/// worker count, progress is reported once per point, exceptions
/// propagate, and — the property the benches rely on — a simulation grid
/// run with many workers produces counters identical to the sequential
/// run.
///
//===----------------------------------------------------------------------===//

#include "experiments/Measure.h"
#include "experiments/SweepRunner.h"

#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

using namespace ddm;

namespace {

TEST(SweepRunner, ResultsInSubmissionOrder) {
  std::vector<std::function<size_t()>> Tasks;
  for (size_t I = 0; I < 100; ++I)
    Tasks.push_back([I] { return I * I; });
  SweepRunner Runner(8);
  std::vector<size_t> Results = Runner.run(Tasks);
  ASSERT_EQ(Results.size(), Tasks.size());
  for (size_t I = 0; I < Results.size(); ++I)
    EXPECT_EQ(Results[I], I * I);
  EXPECT_EQ(Runner.pointMillis().size(), Tasks.size());
}

TEST(SweepRunner, MoreWorkersThanTasks) {
  std::vector<std::function<int()>> Tasks = {[] { return 1; }, [] { return 2; },
                                             [] { return 3; }};
  SweepRunner Runner(16);
  std::vector<int> Results = Runner.run(Tasks);
  EXPECT_EQ(Results, (std::vector<int>{1, 2, 3}));
}

TEST(SweepRunner, EmptyTaskList) {
  SweepRunner Runner(4);
  std::vector<std::function<int()>> Tasks;
  EXPECT_TRUE(Runner.run(Tasks).empty());
  EXPECT_TRUE(Runner.pointMillis().empty());
}

TEST(SweepRunner, ZeroJobsMeansHardwareConcurrency) {
  SweepRunner Runner(0);
  EXPECT_EQ(Runner.jobs(), SweepRunner::defaultJobs());
  EXPECT_GE(Runner.jobs(), 1u);
}

// std::thread::hardware_concurrency() is allowed to return 0 ("not
// computable"); defaultJobs() must floor it so a Jobs=0 runner still has
// at least one worker and actually executes its grid instead of spinning
// up zero threads.
TEST(SweepRunner, HardwareConcurrencyZeroStillExecutesTheGrid) {
  ASSERT_GE(SweepRunner::defaultJobs(), 1u);
  SweepRunner Runner(0);
  std::vector<std::function<int()>> Tasks = {[] { return 11; },
                                             [] { return 22; }};
  EXPECT_EQ(Runner.run(Tasks), (std::vector<int>{11, 22}));
  EXPECT_EQ(Runner.pointMillis().size(), 2u);
}

TEST(SweepRunner, ProgressFiresOncePerPoint) {
  constexpr size_t N = 32;
  std::vector<std::function<size_t()>> Tasks;
  for (size_t I = 0; I < N; ++I)
    Tasks.push_back([I] { return I; });

  std::mutex Mutex;
  std::vector<unsigned> SeenIndex(N, 0);
  size_t MaxCompleted = 0;
  SweepRunner Runner(4);
  Runner.onProgress([&](const SweepProgress &P) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ASSERT_LT(P.Index, N);
    ++SeenIndex[P.Index];
    EXPECT_EQ(P.Total, N);
    EXPECT_GE(P.PointMillis, 0.0);
    if (P.Completed > MaxCompleted)
      MaxCompleted = P.Completed;
  });
  Runner.run(Tasks);
  for (unsigned Count : SeenIndex)
    EXPECT_EQ(Count, 1u);
  EXPECT_EQ(MaxCompleted, N);
}

TEST(SweepRunner, FirstExceptionPropagates) {
  std::vector<std::function<int()>> Tasks;
  for (size_t I = 0; I < 24; ++I)
    Tasks.push_back([I]() -> int {
      if (I == 5)
        throw std::runtime_error("point 5 failed");
      return static_cast<int>(I);
    });
  SweepRunner Runner(4);
  EXPECT_THROW(Runner.run(Tasks), std::runtime_error);
  SweepRunner Inline(1);
  EXPECT_THROW(Inline.run(Tasks), std::runtime_error);
}

void expectSamePoint(const SimPoint &A, const SimPoint &B) {
  DomainEvents Ta = A.Events.total(), Tb = B.Events.total();
  EXPECT_EQ(Ta.Instructions, Tb.Instructions);
  EXPECT_EQ(Ta.LineAccesses, Tb.LineAccesses);
  EXPECT_EQ(Ta.L1DMisses, Tb.L1DMisses);
  EXPECT_EQ(Ta.L2Misses, Tb.L2Misses);
  EXPECT_EQ(Ta.TlbMisses, Tb.TlbMisses);
  EXPECT_EQ(Ta.Writebacks, Tb.Writebacks);
  EXPECT_EQ(Ta.PrefetchesIssued, Tb.PrefetchesIssued);
  EXPECT_EQ(A.Perf.TxPerSec, B.Perf.TxPerSec);
  EXPECT_EQ(A.MeanConsumptionBytes, B.MeanConsumptionBytes);
}

// The property every ported bench relies on: a grid of real simulation
// points produces bit-identical results for any worker count, and the
// parallel run matches plain sequential simulate() calls.
TEST(SweepRunner, SimulationGridDeterministicAcrossWorkerCounts) {
  SimulationOptions Options;
  Options.Scale = 0.05;
  Options.WarmupTx = 1;
  Options.MeasureTx = 1;

  Platform P = xeonLike();
  std::vector<WorkloadSpec> Workloads = phpWorkloads();
  Workloads.resize(2);
  const AllocatorKind Kinds[] = {AllocatorKind::Default,
                                 AllocatorKind::DDmalloc};

  std::vector<std::function<SimPoint()>> Tasks;
  for (const WorkloadSpec &W : Workloads)
    for (AllocatorKind Kind : Kinds)
      Tasks.push_back(
          [W, Kind, P, Options] { return simulate(W, Kind, P, 2, Options); });

  SweepRunner Sequential(1);
  std::vector<SimPoint> SeqPoints = Sequential.run(Tasks);
  SweepRunner Parallel(8);
  std::vector<SimPoint> ParPoints = Parallel.run(Tasks);

  ASSERT_EQ(SeqPoints.size(), Tasks.size());
  ASSERT_EQ(ParPoints.size(), Tasks.size());
  size_t Idx = 0;
  for (const WorkloadSpec &W : Workloads)
    for (AllocatorKind Kind : Kinds) {
      SimPoint Direct = simulate(W, Kind, P, 2, Options);
      expectSamePoint(SeqPoints[Idx], ParPoints[Idx]);
      expectSamePoint(SeqPoints[Idx], Direct);
      ++Idx;
    }
}

} // namespace
