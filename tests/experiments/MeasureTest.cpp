//===- tests/experiments/MeasureTest.cpp - Harness unit tests -------------===//

#include "experiments/Measure.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

SimulationOptions tinyOptions() {
  SimulationOptions Options;
  Options.Scale = 0.05;
  Options.WarmupTx = 1;
  Options.MeasureTx = 2;
  Options.Seed = 5;
  return Options;
}

} // namespace

TEST(MeasureTest, PercentOver) {
  EXPECT_NEAR(percentOver(110.0, 100.0), 10.0, 1e-9);
  EXPECT_NEAR(percentOver(75.0, 100.0), -25.0, 1e-9);
  EXPECT_DOUBLE_EQ(percentOver(5.0, 0.0), 0.0); // guarded division
}

TEST(MeasureTest, SimulateIsDeterministic) {
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimPoint A = simulate(W, AllocatorKind::DDmalloc, P, 4, tinyOptions());
  SimPoint B = simulate(W, AllocatorKind::DDmalloc, P, 4, tinyOptions());
  EXPECT_DOUBLE_EQ(A.Perf.TxPerSec, B.Perf.TxPerSec);
  EXPECT_DOUBLE_EQ(A.Perf.CyclesPerTx, B.Perf.CyclesPerTx);
  EXPECT_EQ(A.Events.total().L2Misses, B.Events.total().L2Misses);
}

TEST(MeasureTest, SeedChangesTheRunButNotTheShape) {
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimulationOptions O1 = tinyOptions(), O2 = tinyOptions();
  O2.Seed = 6;
  SimPoint A = simulate(W, AllocatorKind::DDmalloc, P, 4, O1);
  SimPoint B = simulate(W, AllocatorKind::DDmalloc, P, 4, O2);
  EXPECT_NE(A.Perf.CyclesPerTx, B.Perf.CyclesPerTx);
  // Same order of magnitude: the workload model, not the seed, dominates.
  EXPECT_NEAR(A.Perf.CyclesPerTx / B.Perf.CyclesPerTx, 1.0, 0.2);
}

TEST(MeasureTest, EventsAreAveragedPerTransaction) {
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimulationOptions Short = tinyOptions();
  SimulationOptions Long = tinyOptions();
  Long.MeasureTx = 6;
  SimPoint A = simulate(W, AllocatorKind::Region, P, 1, Short);
  SimPoint B = simulate(W, AllocatorKind::Region, P, 1, Long);
  // Per-transaction instruction counts are independent of how many
  // transactions were measured (within noise).
  EXPECT_NEAR(A.Perf.InstructionsPerTx / B.Perf.InstructionsPerTx, 1.0, 0.05);
}

TEST(MeasureTest, MmShareRespondsToTheAllocator) {
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimPoint Default = simulate(W, AllocatorKind::Default, P, 1, tinyOptions());
  SimPoint Region = simulate(W, AllocatorKind::Region, P, 1, tinyOptions());
  double DefaultShare = Default.Perf.MmCyclesPerTx / Default.Perf.CyclesPerTx;
  double RegionShare = Region.Perf.MmCyclesPerTx / Region.Perf.CyclesPerTx;
  EXPECT_GT(DefaultShare, 3.0 * RegionShare);
}

TEST(MeasureTest, LargePageOptionReachesTheTlbModel) {
  WorkloadSpec W = phpBb();
  Platform P = xeonLike();
  SimulationOptions Options = tinyOptions();
  SimPoint Small = simulate(W, AllocatorKind::DDmalloc, P, 1, Options);
  Options.LargePages = true;
  SimPoint Large = simulate(W, AllocatorKind::DDmalloc, P, 1, Options);
  EXPECT_LT(Large.Events.total().TlbMisses, Small.Events.total().TlbMisses);
}
