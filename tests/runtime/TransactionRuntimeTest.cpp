//===- tests/runtime/TransactionRuntimeTest.cpp - Runtime engine tests ----===//

#include "runtime/TransactionRuntime.h"
#include "sim/SimSink.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

WorkloadSpec tinyWorkload() {
  WorkloadSpec W = phpBb();
  return W;
}

RuntimeConfig phpConfig(AllocatorKind Kind) {
  RuntimeConfig Config;
  Config.Kind = Kind;
  Config.UseBulkFree = true;
  Config.Scale = 0.05;
  return Config;
}

} // namespace

TEST(TransactionRuntimeTest, ExecutesTransactionsAndCounts) {
  TransactionRuntime Runtime(tinyWorkload(), phpConfig(AllocatorKind::DDmalloc));
  Runtime.executeTransaction();
  Runtime.executeTransaction();
  const RuntimeMetrics &M = Runtime.metrics();
  EXPECT_EQ(M.Transactions, 2u);
  EXPECT_GT(M.TotalTrace.Mallocs, 0u);
  EXPECT_GT(M.TotalTrace.WorkInstructions, 0u);
  EXPECT_EQ(M.ConsumptionBytes.count(), 2u);
}

TEST(TransactionRuntimeTest, PhpModeBulkFreesEveryTransaction) {
  TransactionRuntime Runtime(tinyWorkload(), phpConfig(AllocatorKind::DDmalloc));
  for (int I = 0; I < 3; ++I)
    Runtime.executeTransaction();
  const AllocatorStats &S = Runtime.allocator().stats();
  EXPECT_EQ(S.FreeAllCalls, 3u);
  EXPECT_EQ(S.UsableBytesLive, 0u);
}

TEST(TransactionRuntimeTest, PhpModeWorksWithEveryBulkFreeAllocator) {
  for (AllocatorKind Kind :
       {AllocatorKind::Default, AllocatorKind::Region, AllocatorKind::Obstack,
        AllocatorKind::DDmalloc}) {
    TransactionRuntime Runtime(tinyWorkload(), phpConfig(Kind));
    Runtime.executeTransaction();
    EXPECT_EQ(Runtime.metrics().Transactions, 1u) << allocatorKindName(Kind);
  }
}

TEST(TransactionRuntimeTest, RubyModeSweepsWithPerObjectFree) {
  RuntimeConfig Config = phpConfig(AllocatorKind::Glibc);
  Config.UseBulkFree = false;
  Config.LeakFraction = 0.0;
  TransactionRuntime Runtime(tinyWorkload(), Config);
  Runtime.executeTransaction();
  const AllocatorStats &S = Runtime.allocator().stats();
  EXPECT_EQ(S.FreeAllCalls, 0u);
  // Everything was freed per-object (trace frees + sweep).
  EXPECT_EQ(S.FreeCalls, S.MallocCalls);
  EXPECT_EQ(S.UsableBytesLive, 0u);
}

TEST(TransactionRuntimeTest, RubyModeLeaksConfiguredFraction) {
  RuntimeConfig Config = phpConfig(AllocatorKind::Glibc);
  Config.UseBulkFree = false;
  Config.LeakFraction = 0.5; // exaggerated for the test
  Config.Scale = 0.1;
  TransactionRuntime Runtime(tinyWorkload(), Config);
  Runtime.executeTransaction();
  const AllocatorStats &S = Runtime.allocator().stats();
  EXPECT_LT(S.FreeCalls, S.MallocCalls);
  EXPECT_GT(S.UsableBytesLive, 0u);
}

TEST(TransactionRuntimeTest, RubyModeRestartsOnSchedule) {
  RuntimeConfig Config = phpConfig(AllocatorKind::TCMalloc);
  Config.UseBulkFree = false;
  Config.RestartPeriodTx = 2;
  TransactionRuntime Runtime(tinyWorkload(), Config);
  for (int I = 0; I < 5; ++I)
    Runtime.executeTransaction();
  EXPECT_EQ(Runtime.metrics().Restarts, 2u);
  EXPECT_EQ(Runtime.metrics().RestartInstructions,
            2u * Config.RestartCostInstructions);
  // A fresh allocator after the restart: its stats restarted too.
  EXPECT_LT(Runtime.allocator().stats().MallocCalls,
            Runtime.metrics().TotalTrace.Mallocs);
}

TEST(TransactionRuntimeTest, SinkSeesBothDomains) {
  Platform P = xeonLike();
  SimSink Sink(P, 1);
  TransactionRuntime Runtime(tinyWorkload(), phpConfig(AllocatorKind::Default),
                             &Sink);
  Runtime.executeTransaction();
  const DomainEvents &App = Sink.events(CostDomain::Application);
  const DomainEvents &Mm = Sink.events(CostDomain::MemoryManagement);
  EXPECT_GT(App.Instructions, 0u);
  EXPECT_GT(Mm.Instructions, 0u);
  EXPECT_GT(App.LineAccesses, 0u);
  EXPECT_GT(Mm.LineAccesses, 0u);
  // Application work dominates a web transaction.
  EXPECT_GT(App.Instructions, Mm.Instructions);
}

TEST(TransactionRuntimeTest, DeterministicAcrossRuns) {
  auto Run = [] {
    RuntimeConfig Config = phpConfig(AllocatorKind::DDmalloc);
    Config.Seed = 99;
    TransactionRuntime Runtime(tinyWorkload(), Config);
    Runtime.executeTransaction();
    Runtime.executeTransaction();
    return Runtime.metrics().TotalTrace.AllocatedBytes;
  };
  EXPECT_EQ(Run(), Run());
}

TEST(TransactionRuntimeTest, AllocatorCodeFootprintsOrdered) {
  // The L1I model's premise: defragmenting allocators carry more code.
  auto Footprint = [](AllocatorKind Kind) {
    RuntimeConfig Config;
    Config.Kind = Kind;
    Config.Scale = 0.01;
    Config.UseBulkFree = createAllocator(Kind)->supportsBulkFree();
    TransactionRuntime Runtime(phpBb(), Config);
    return Runtime.allocatorCodeFootprintBytes();
  };
  EXPECT_LT(Footprint(AllocatorKind::Region),
            Footprint(AllocatorKind::DDmalloc));
  EXPECT_LT(Footprint(AllocatorKind::DDmalloc),
            Footprint(AllocatorKind::Default));
}
