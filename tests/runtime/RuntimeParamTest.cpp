//===- tests/runtime/RuntimeParamTest.cpp - Runtime x allocator sweeps ----===//
///
/// \file
/// The full transaction engine driven against every allocator, with the
/// built-in canary checks acting as heap-corruption detectors (the
/// runtime calls fatal() if any object's contents are damaged while
/// live). Parameterized over (allocator, workload).
///
//===----------------------------------------------------------------------===//

#include "runtime/TransactionRuntime.h"
#include "sim/SimSink.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

class RuntimeParamTest
    : public ::testing::TestWithParam<std::tuple<AllocatorKind, std::string>> {
protected:
  AllocatorKind kind() const { return std::get<0>(GetParam()); }
  const WorkloadSpec &workload() const {
    const WorkloadSpec *W = findWorkload(std::get<1>(GetParam()));
    EXPECT_NE(W, nullptr);
    return *W;
  }

  RuntimeConfig config() const {
    RuntimeConfig Config;
    Config.Kind = kind();
    Config.UseBulkFree = createAllocator(kind())->supportsBulkFree();
    Config.Scale = 0.05;
    return Config;
  }
};

} // namespace

TEST_P(RuntimeParamTest, TransactionsRunCleanlyWithCanaries) {
  // Three transactions; any cross-object corruption trips the runtime's
  // canary checks (fatal/abort) and fails the test hard.
  TransactionRuntime Runtime(workload(), config());
  for (int I = 0; I < 3; ++I)
    Runtime.executeTransaction();
  EXPECT_EQ(Runtime.metrics().Transactions, 3u);
}

TEST_P(RuntimeParamTest, AllocatorStatsAgreeWithTrace) {
  RuntimeConfig Config = config();
  Config.LeakFraction = 0.0;
  TransactionRuntime Runtime(workload(), Config);
  Runtime.executeTransaction();
  const RuntimeMetrics &M = Runtime.metrics();
  const AllocatorStats &S = Runtime.allocator().stats();
  // Reallocs may allocate internally, so MallocCalls >= trace mallocs.
  EXPECT_GE(S.MallocCalls, M.TotalTrace.Mallocs);
  EXPECT_EQ(S.ReallocCalls, M.TotalTrace.Reallocs);
  if (Config.UseBulkFree) {
    EXPECT_EQ(S.FreeAllCalls, 1u);
  } else {
    // Ruby mode with no leak: every object went through per-object free.
    EXPECT_EQ(S.UsableBytesLive, 0u);
  }
}

TEST_P(RuntimeParamTest, SimulatedRunMatchesNativeRunLogically) {
  // The same seed with and without a sink must produce identical traces:
  // instrumentation must not perturb behaviour.
  RuntimeConfig Config = config();
  Config.Seed = 321;
  TransactionRuntime Native(workload(), Config);
  Native.executeTransaction();

  Platform P = xeonLike();
  SimSink Sink(P, 2);
  TransactionRuntime Simulated(workload(), Config, &Sink);
  Simulated.executeTransaction();

  EXPECT_EQ(Native.metrics().TotalTrace.Mallocs,
            Simulated.metrics().TotalTrace.Mallocs);
  EXPECT_EQ(Native.metrics().TotalTrace.AllocatedBytes,
            Simulated.metrics().TotalTrace.AllocatedBytes);
  EXPECT_EQ(Native.metrics().ConsumptionBytes.mean(),
            Simulated.metrics().ConsumptionBytes.mean());
}

INSTANTIATE_TEST_SUITE_P(
    AllocatorsByWorkload, RuntimeParamTest,
    ::testing::Combine(::testing::ValuesIn(allAllocatorKinds()),
                       ::testing::Values(std::string("phpbb"),
                                         std::string("specweb"))),
    [](const ::testing::TestParamInfo<std::tuple<AllocatorKind, std::string>>
           &Info) {
      return std::string(allocatorKindName(std::get<0>(Info.param))) + "_" +
             std::get<1>(Info.param);
    });

TEST(GcFrequencyTest, LongerBulkFreePeriodsGrowTheHeap) {
  // The Section 5 knob: collecting every N transactions lets N
  // transactions of garbage accumulate (a GC heap filling up).
  const WorkloadSpec *W = findWorkload("phpbb");
  ASSERT_NE(W, nullptr);
  uint64_t LastConsumption = 0;
  for (uint64_t Period : {1u, 2u, 4u}) {
    RuntimeConfig Config;
    Config.Kind = AllocatorKind::Region;
    Config.BulkFreePeriodTx = Period;
    Config.Scale = 0.1;
    TransactionRuntime Runtime(*W, Config);
    for (int I = 0; I < 8; ++I)
      Runtime.executeTransaction();
    auto Consumption =
        static_cast<uint64_t>(Runtime.metrics().ConsumptionBytes.max());
    EXPECT_GT(Consumption, LastConsumption) << "period " << Period;
    LastConsumption = Consumption;
    // freeAll ran exactly 8 / Period times.
    EXPECT_EQ(Runtime.allocator().stats().FreeAllCalls, 8 / Period);
  }
}

TEST(GcFrequencyTest, PeriodOneIsTheDefaultBehaviour) {
  const WorkloadSpec *W = findWorkload("phpbb");
  RuntimeConfig A;
  A.Kind = AllocatorKind::Region;
  A.Scale = 0.05;
  RuntimeConfig B = A;
  B.BulkFreePeriodTx = 1;
  TransactionRuntime Ra(*W, A), Rb(*W, B);
  for (int I = 0; I < 3; ++I) {
    Ra.executeTransaction();
    Rb.executeTransaction();
  }
  EXPECT_EQ(Ra.allocator().stats().FreeAllCalls,
            Rb.allocator().stats().FreeAllCalls);
}
