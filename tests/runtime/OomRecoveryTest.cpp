//===- tests/runtime/OomRecoveryTest.cpp - Recoverable heap exhaustion ----===//
///
/// The error-handling contract's central promise: a mid-transaction
/// allocation failure aborts only that transaction. These tests drive the
/// runtime with the worker_heap fault site armed and check, for every
/// allocator in the zoo, that executeTransaction() reports OutOfMemory,
/// the rollback returns the heap to zero live bytes, the outcome carries a
/// usable diagnostic, and the same runtime keeps serving clean
/// transactions afterwards. Corruption, by contrast, stays fatal — the
/// canary death tests pin that boundary.
///
//===----------------------------------------------------------------------===//

#include "runtime/TransactionRuntime.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

class OomRecoveryTest : public testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }

  static void arm(const std::string &Spec) {
    FaultPlan Plan;
    std::string Error;
    ASSERT_TRUE(FaultPlan::parse(Spec, Plan, Error)) << Error;
    FaultInjector::instance().arm(Plan);
  }

  static RuntimeConfig configFor(AllocatorKind Kind) {
    RuntimeConfig Config;
    Config.Kind = Kind;
    Config.UseBulkFree = allocatorSupportsBulkFree(Kind);
    Config.LeakFraction = 0.0;
    Config.Scale = 0.05;
    return Config;
  }
};

TEST_F(OomRecoveryTest, EveryAllocatorSurvivesAnInjectedOomAndStaysUsable) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    const char *Name = allocatorKindName(Kind);
    SCOPED_TRACE(Name);
    // The 40th runtime allocation of the first transaction fails.
    arm("seed=1,worker_heap:every=40");
    TransactionRuntime Runtime(phpBb(), configFor(Kind));
    EXPECT_EQ(Runtime.executeTransaction(), TxStatus::OutOfMemory);

    const TxOutcome &Outcome = Runtime.lastOutcome();
    EXPECT_EQ(Outcome.Status, TxStatus::OutOfMemory);
    EXPECT_EQ(Outcome.AllocatorName, Name);
    EXPECT_GT(Outcome.FailedAllocBytes, 0u);
    EXPECT_GT(Outcome.PeakLiveBytes, 0u);

    // The rollback reclaimed everything the doomed transaction allocated.
    EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
    EXPECT_EQ(Runtime.metrics().OomAborts, 1u);
    EXPECT_EQ(Runtime.metrics().Transactions, 0u);

    // The same runtime (same heap) serves a clean transaction afterwards,
    // and the success resets the sticky outcome.
    FaultInjector::instance().disarm();
    EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
    EXPECT_EQ(Runtime.lastOutcome().Status, TxStatus::Ok);
    EXPECT_EQ(Runtime.metrics().Transactions, 1u);
    EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
  }
}

TEST_F(OomRecoveryTest, AbortedTransactionContributesNothingToAverages) {
  arm("seed=1,worker_heap:every=25");
  RuntimeConfig Config = configFor(AllocatorKind::DDmalloc);
  TransactionRuntime Runtime(phpBb(), Config);
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::OutOfMemory);
  EXPECT_EQ(Runtime.metrics().TotalTrace.Mallocs, 0u);
  EXPECT_EQ(Runtime.metrics().ConsumptionBytes.count(), 0u);

  FaultInjector::instance().disarm();
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
  EXPECT_GT(Runtime.metrics().TotalTrace.Mallocs, 0u);
  EXPECT_EQ(Runtime.metrics().ConsumptionBytes.count(), 1u);
}

TEST_F(OomRecoveryTest, DirectDriveAbortIgnoresEventsUntilTransactionEnd) {
  // Drive the TxExecutor interface by hand: after the failed allocation
  // the runtime must no-op every later event (the generator's stream winds
  // down without touching dead state), then roll back at the boundary.
  arm("seed=1,worker_heap:p=1");
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::Glibc));
  ASSERT_FALSE(Runtime.txAborted());
  Runtime.onAlloc(0, 64); // fails immediately
  EXPECT_TRUE(Runtime.txAborted());
  // None of these may touch the (never-created) object or crash.
  Runtime.onTouch(0, true);
  Runtime.onRealloc(0, 64, 128);
  Runtime.onFree(0);
  Runtime.onWork(100);
  EXPECT_EQ(Runtime.completeTransaction(TraceStats()), TxStatus::OutOfMemory);
  EXPECT_EQ(Runtime.lastOutcome().FailedAllocBytes, 64u);
  EXPECT_FALSE(Runtime.txAborted());
}

TEST_F(OomRecoveryTest, FailedReallocKeepsTheOldObjectAndRollsItBack) {
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::Glibc));
  Runtime.onAlloc(0, 64);
  ASSERT_NE(Runtime.objectAddress(0), nullptr);
  arm("seed=1,worker_heap:p=1");
  Runtime.onRealloc(0, 64, 4096); // grow fails
  EXPECT_TRUE(Runtime.txAborted());
  // realloc contract: the old allocation is still live until rollback.
  EXPECT_GT(Runtime.allocator().stats().UsableBytesLive, 0u);
  FaultInjector::instance().disarm();
  EXPECT_EQ(Runtime.completeTransaction(TraceStats()), TxStatus::OutOfMemory);
  EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
  EXPECT_EQ(Runtime.lastOutcome().FailedAllocBytes, 4096u);
}

using OomRecoveryDeathTest = OomRecoveryTest;

TEST_F(OomRecoveryDeathTest, CorruptedCanaryIsFatalOnFree) {
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::DDmalloc));
  Runtime.onAlloc(7, 64);
  auto *Canary = static_cast<uint32_t *>(Runtime.objectAddress(7));
  ASSERT_NE(Canary, nullptr);
  *Canary ^= 0xdeadbeef; // smash the object's identity word
  EXPECT_DEATH(Runtime.onFree(7), "canary mismatch before free");
}

TEST_F(OomRecoveryDeathTest, CorruptedCanaryIsFatalOnTouch) {
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::Glibc));
  Runtime.onAlloc(3, 128);
  auto *Canary = static_cast<uint32_t *>(Runtime.objectAddress(3));
  ASSERT_NE(Canary, nullptr);
  *Canary = ~*Canary;
  EXPECT_DEATH(Runtime.onTouch(3, false), "canary mismatch on touch");
}

TEST_F(OomRecoveryDeathTest, UndersizedHeapReservationIsFatal) {
  // Misconfiguration (unlike exhaustion) aborts: a ddmalloc heap smaller
  // than four segments cannot hold its own metadata.
  AllocatorOptions Options;
  Options.SegmentSize = 32 * 1024;
  Options.HeapReserveBytes = 2 * Options.SegmentSize;
  EXPECT_DEATH(createAllocator(AllocatorKind::DDmalloc, Options),
               "heap reservation too small");
}

} // namespace
