//===- tests/support/TableTest.cpp - Table unit tests ---------------------===//

#include "support/Table.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(TableTest, CellsRoundTrip) {
  Table T({"a", "b", "c"});
  T.row().cell("x").cell(uint64_t(7)).cell(3.14159, 2);
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_EQ(T.numColumns(), 3u);
  EXPECT_EQ(T.at(0, 0), "x");
  EXPECT_EQ(T.at(0, 1), "7");
  EXPECT_EQ(T.at(0, 2), "3.14");
}

TEST(TableTest, PercentCellSign) {
  Table T({"v"});
  T.row().percentCell(4.05);
  T.row().percentCell(-27.2);
  // 4.05 is not exactly representable; printf rounds the stored 4.0499...
  EXPECT_EQ(T.at(0, 0), "+4.0%");
  EXPECT_EQ(T.at(1, 0), "-27.2%");
}

TEST(TableTest, AsciiAlignment) {
  Table T({"name", "x"});
  T.row().cell("longvalue").cell("1");
  T.row().cell("s").cell("22");
  std::string Text = T.renderAscii();
  // Header, separator, two rows.
  int Lines = 0;
  for (char C : Text)
    if (C == '\n')
      ++Lines;
  EXPECT_EQ(Lines, 4);
  // The second column starts at the same offset in both data rows.
  size_t HeaderEnd = Text.find('\n');
  size_t SepEnd = Text.find('\n', HeaderEnd + 1);
  std::string Row1 = Text.substr(SepEnd + 1, Text.find('\n', SepEnd + 1) - SepEnd - 1);
  EXPECT_EQ(Row1.find('1'), std::string("longvalue  ").size());
}

TEST(TableTest, CsvEscaping) {
  Table T({"a", "b"});
  T.row().cell("plain").cell("with,comma");
  T.row().cell("with\"quote").cell("x");
  std::string Csv = T.renderCsv();
  EXPECT_NE(Csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(Csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(Csv.find("a,b\n"), std::string::npos);
}

TEST(TableTest, IntCellTypes) {
  Table T({"a"});
  T.row().cell(int64_t(-5));
  T.row().cell(42);
  T.row().cell(7u);
  EXPECT_EQ(T.at(0, 0), "-5");
  EXPECT_EQ(T.at(1, 0), "42");
  EXPECT_EQ(T.at(2, 0), "7");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KiB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024 + 512 * 1024), "3.5 MiB");
}

TEST(FormatTest, Count) {
  EXPECT_EQ(formatCount(7), "7");
  EXPECT_EQ(formatCount(1234), "1,234");
  EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(FormatTest, Relative) {
  EXPECT_EQ(formatRelative(1.04), "+4.0%");
  EXPECT_EQ(formatRelative(0.728), "-27.2%");
}
