//===- tests/support/FaultInjectionTest.cpp - Fault-plan semantics --------===//
///
/// The injector underpins every chaos experiment, so its contract is
/// pinned here: spec parsing round-trips through describe(), each trigger
/// mode fires exactly as documented, the same seed replays the same
/// fail/pass sequence, and a disarmed injector never fires and costs only
/// the fast-path check.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

/// Every test arms the process-wide singleton; always disarm on the way
/// out so sanitizer runs (whole binaries in one process) stay clean.
class FaultInjectionTest : public testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }

  static FaultPlan parseOk(const std::string &Spec) {
    FaultPlan Plan;
    std::string Error;
    EXPECT_TRUE(FaultPlan::parse(Spec, Plan, Error)) << Error;
    return Plan;
  }
};

TEST_F(FaultInjectionTest, SiteNamesRoundTrip) {
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    auto Site = static_cast<FaultSite>(I);
    std::optional<FaultSite> Back = faultSiteFromName(faultSiteName(Site));
    ASSERT_TRUE(Back.has_value()) << faultSiteName(Site);
    EXPECT_EQ(*Back, Site);
  }
  EXPECT_FALSE(faultSiteFromName("worker_heaps").has_value());
}

TEST_F(FaultInjectionTest, ParseDescribeRoundTrip) {
  std::string Spec =
      "seed=42,worker_heap:p=0.01,segment_acquire:every=50,arena_map:after=3";
  FaultPlan Plan = parseOk(Spec);
  EXPECT_EQ(Plan.Seed, 42u);
  // describe() is canonical (sites in enum order) and itself parseable.
  std::string Canonical = Plan.describe();
  FaultPlan Again = parseOk(Canonical);
  EXPECT_EQ(Again.describe(), Canonical);
  EXPECT_EQ(Canonical,
            "seed=42,arena_map:after=3,segment_acquire:every=50,"
            "worker_heap:p=0.01");
}

TEST_F(FaultInjectionTest, ParseRejectsMalformedSpecs) {
  FaultPlan Plan;
  std::string Error;
  EXPECT_FALSE(FaultPlan::parse("seed=abc", Plan, Error));
  EXPECT_NE(Error.find("seed"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("nosuch_site:p=0.5", Plan, Error));
  EXPECT_NE(Error.find("unknown fault site"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("worker_heap:p=1.5", Plan, Error));
  EXPECT_FALSE(FaultPlan::parse("worker_heap:every=0", Plan, Error));
  EXPECT_FALSE(FaultPlan::parse("worker_heap:sometimes", Plan, Error));
  EXPECT_FALSE(FaultPlan::parse("worker_heap:p=0.1,,", Plan, Error));
  EXPECT_NE(Error.find("empty item"), std::string::npos);
  // A trailing-garbage probability must not silently truncate.
  EXPECT_FALSE(FaultPlan::parse("worker_heap:p=0.1x", Plan, Error));
}

TEST_F(FaultInjectionTest, ParseRejectsDuplicateSites) {
  // Last-wins would silently discard the earlier trigger, so a repeated
  // site is an error — even with an identical trigger.
  FaultPlan Plan;
  std::string Error;
  EXPECT_FALSE(
      FaultPlan::parse("worker_heap:p=0.1,worker_heap:every=5", Plan, Error));
  EXPECT_NE(Error.find("duplicate fault site"), std::string::npos) << Error;
  EXPECT_NE(Error.find("worker_heap"), std::string::npos) << Error;
  EXPECT_FALSE(FaultPlan::parse(
      "heap_double_free:every=7,heap_double_free:every=7", Plan, Error));
  EXPECT_NE(Error.find("duplicate fault site"), std::string::npos) << Error;
  // The same trigger on different sites stays legal.
  EXPECT_TRUE(
      FaultPlan::parse("worker_heap:p=0.1,page_acquire:p=0.1", Plan, Error))
      << Error;
}

TEST_F(FaultInjectionTest, JoinedNamesListEverySiteForHelpText) {
  std::string Joined = faultSiteNamesJoined();
  for (unsigned I = 0; I < NumFaultSites; ++I)
    EXPECT_NE(Joined.find(faultSiteName(static_cast<FaultSite>(I))),
              std::string::npos)
        << faultSiteName(static_cast<FaultSite>(I));
  // The corruption-injecting sites are part of the advertised vocabulary.
  EXPECT_NE(Joined.find("heap_scribble_overflow"), std::string::npos);
  EXPECT_NE(Joined.find("heap_scribble_uaf"), std::string::npos);
  EXPECT_NE(Joined.find("heap_double_free"), std::string::npos);
}

TEST_F(FaultInjectionTest, CorruptionSitesRoundTripThroughDescribe) {
  FaultPlan Plan = parseOk("seed=7,heap_double_free:p=0.5,"
                           "heap_scribble_overflow:every=3,"
                           "heap_scribble_uaf:after=2");
  std::string Canonical = Plan.describe();
  FaultPlan Again = parseOk(Canonical);
  EXPECT_EQ(Again.describe(), Canonical);
  EXPECT_EQ(Canonical, "seed=7,heap_scribble_overflow:every=3,"
                       "heap_scribble_uaf:after=2,heap_double_free:p=0.5");
}

TEST_F(FaultInjectionTest, DisarmedNeverFails) {
  FaultInjector::instance().disarm();
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(faultShouldFail(FaultSite::WorkerHeap));
}

TEST_F(FaultInjectionTest, EveryNthFiresOnExactMultiples) {
  FaultInjector::instance().arm(parseOk("seed=1,chunk_acquire:every=3"));
  for (uint64_t Hit = 1; Hit <= 12; ++Hit)
    EXPECT_EQ(faultShouldFail(FaultSite::ChunkAcquire), Hit % 3 == 0) << Hit;
  FaultSiteCounters C =
      FaultInjector::instance().counters(FaultSite::ChunkAcquire);
  EXPECT_EQ(C.Hits, 12u);
  EXPECT_EQ(C.Fired, 4u);
}

TEST_F(FaultInjectionTest, AfterNFailsEverythingPastTheThreshold) {
  FaultInjector::instance().arm(parseOk("seed=1,trace_write:after=5"));
  for (uint64_t Hit = 1; Hit <= 10; ++Hit)
    EXPECT_EQ(faultShouldFail(FaultSite::TraceWrite), Hit > 5) << Hit;
}

TEST_F(FaultInjectionTest, ProbabilityExtremesAreExact) {
  FaultInjector::instance().arm(parseOk("seed=9,worker_heap:p=0"));
  for (int I = 0; I < 200; ++I)
    EXPECT_FALSE(faultShouldFail(FaultSite::WorkerHeap));
  FaultInjector::instance().arm(parseOk("seed=9,worker_heap:p=1"));
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(faultShouldFail(FaultSite::WorkerHeap));
}

TEST_F(FaultInjectionTest, ProbabilityRoughlyMatchesOverManyHits) {
  FaultInjector::instance().arm(parseOk("seed=7,worker_heap:p=0.25"));
  int Fired = 0;
  for (int I = 0; I < 20000; ++I)
    Fired += faultShouldFail(FaultSite::WorkerHeap) ? 1 : 0;
  EXPECT_NEAR(Fired / 20000.0, 0.25, 0.02);
}

TEST_F(FaultInjectionTest, SameSeedReplaysTheSameSequence) {
  FaultPlan Plan = parseOk("seed=123,worker_heap:p=0.3");
  std::vector<bool> First, Second;
  FaultInjector::instance().arm(Plan);
  for (int I = 0; I < 500; ++I)
    First.push_back(faultShouldFail(FaultSite::WorkerHeap));
  FaultInjector::instance().arm(Plan); // re-arm resets streams + counters
  for (int I = 0; I < 500; ++I)
    Second.push_back(faultShouldFail(FaultSite::WorkerHeap));
  EXPECT_EQ(First, Second);
  EXPECT_EQ(FaultInjector::instance().counters(FaultSite::WorkerHeap).Hits,
            500u);
}

TEST_F(FaultInjectionTest, SitesDrawFromIndependentStreams) {
  // Adding a trigger at one site must not shift another site's sequence.
  std::vector<bool> Alone;
  FaultInjector::instance().arm(parseOk("seed=55,worker_heap:p=0.5"));
  for (int I = 0; I < 300; ++I)
    Alone.push_back(faultShouldFail(FaultSite::WorkerHeap));

  std::vector<bool> WithNeighbor;
  FaultInjector::instance().arm(
      parseOk("seed=55,worker_heap:p=0.5,segment_acquire:p=0.5"));
  for (int I = 0; I < 300; ++I) {
    (void)faultShouldFail(FaultSite::SegmentAcquire); // interleave heavily
    WithNeighbor.push_back(faultShouldFail(FaultSite::WorkerHeap));
  }
  EXPECT_EQ(Alone, WithNeighbor);
}

TEST_F(FaultInjectionTest, DisarmStopsFiringButKeepsCounters) {
  FaultInjector::instance().arm(parseOk("seed=2,worker_heap:p=1"));
  EXPECT_TRUE(faultShouldFail(FaultSite::WorkerHeap));
  FaultInjector::instance().disarm();
  EXPECT_FALSE(faultShouldFail(FaultSite::WorkerHeap));
  FaultSiteCounters C =
      FaultInjector::instance().counters(FaultSite::WorkerHeap);
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Fired, 1u);
}

} // namespace
