//===- tests/support/StatsTest.cpp - Stats unit tests ---------------------===//

#include "support/Stats.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(RunningStatTest, EmptyIsAllZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 42.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 42.0);
  EXPECT_DOUBLE_EQ(S.max(), 42.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 4.0); // Classic textbook example.
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng R(1);
  RunningStat Whole, PartA, PartB;
  for (int I = 0; I < 1000; ++I) {
    double X = R.nextDouble() * 100.0;
    Whole.add(X);
    (I % 2 ? PartA : PartB).add(X);
  }
  PartA.merge(PartB);
  EXPECT_EQ(PartA.count(), Whole.count());
  EXPECT_NEAR(PartA.mean(), Whole.mean(), 1e-9);
  EXPECT_NEAR(PartA.variance(), Whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(PartA.min(), Whole.min());
  EXPECT_DOUBLE_EQ(PartA.max(), Whole.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat A, Empty;
  A.add(1.0);
  A.add(3.0);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), 2.0);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 2.0);
}

TEST(Log2HistogramTest, BucketBoundaries) {
  Log2Histogram H;
  H.add(0);
  H.add(1);
  H.add(2);
  H.add(3);
  H.add(4);
  EXPECT_EQ(H.totalCount(), 5u);
  EXPECT_EQ(H.countFor(0), 1u); // [0,1)
  EXPECT_EQ(H.countFor(1), 1u); // [1,2)
  EXPECT_EQ(H.countFor(2), 2u); // [2,4): 2 and 3
  EXPECT_EQ(H.countFor(3), 2u);
  EXPECT_EQ(H.countFor(4), 1u); // [4,8)
  EXPECT_EQ(H.countFor(100), 0u);
}

TEST(Log2HistogramTest, WeightedAdd) {
  Log2Histogram H;
  H.add(10, 5);
  EXPECT_EQ(H.totalCount(), 5u);
  EXPECT_EQ(H.countFor(10), 5u);
}

TEST(Log2HistogramTest, Percentile) {
  Log2Histogram H;
  for (int I = 0; I < 90; ++I)
    H.add(3); // bucket [2,4)
  for (int I = 0; I < 10; ++I)
    H.add(1000); // bucket [512,1024)
  EXPECT_EQ(H.percentileUpperBound(0.5), 4u);
  EXPECT_EQ(H.percentileUpperBound(0.9), 4u);
  EXPECT_EQ(H.percentileUpperBound(0.95), 1024u);
}

TEST(Log2HistogramTest, RenderShowsBuckets) {
  Log2Histogram H;
  H.add(3, 10);
  std::string Text = H.render();
  EXPECT_NE(Text.find("10"), std::string::npos);
  EXPECT_NE(Text.find('#'), std::string::npos);
  Log2Histogram Empty;
  EXPECT_EQ(Empty.render(), "(empty)\n");
}
