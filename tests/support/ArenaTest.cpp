//===- tests/support/ArenaTest.cpp - AlignedArena unit tests --------------===//

#include "support/Arena.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace ddm;

TEST(ArenaTest, BaseIsAligned) {
  for (size_t Alignment : {4096ul, 32768ul, 1048576ul}) {
    AlignedArena Arena(1 << 20, Alignment);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Arena.base()) % Alignment, 0u);
    EXPECT_GE(Arena.size(), 1u << 20);
  }
}

TEST(ArenaTest, MemoryIsZeroedAndWritable) {
  AlignedArena Arena(64 * 1024, 4096);
  for (size_t I = 0; I < Arena.size(); I += 997)
    EXPECT_EQ(Arena.base()[I], std::byte{0});
  std::memset(Arena.base(), 0xAB, Arena.size());
  EXPECT_EQ(Arena.base()[Arena.size() - 1], std::byte{0xAB});
}

TEST(ArenaTest, Contains) {
  AlignedArena Arena(4096, 4096);
  EXPECT_TRUE(Arena.contains(Arena.base()));
  EXPECT_TRUE(Arena.contains(Arena.base() + 4095));
  EXPECT_FALSE(Arena.contains(Arena.base() + 4096));
  int Local;
  EXPECT_FALSE(Arena.contains(&Local));
}

TEST(ArenaTest, DecommitZeroesContents) {
  AlignedArena Arena(64 * 1024, 4096);
  std::memset(Arena.base(), 0xCD, Arena.size());
  Arena.decommit();
  for (size_t I = 0; I < Arena.size(); I += 511)
    EXPECT_EQ(Arena.base()[I], std::byte{0});
}

TEST(ArenaTest, ResidentBytesGrowsWithTouch) {
  AlignedArena Arena(1 << 20, 4096);
  size_t Before = Arena.residentBytes();
  std::memset(Arena.base(), 1, 512 * 1024);
  size_t After = Arena.residentBytes();
  EXPECT_GE(After, Before);
  EXPECT_GE(After, 512u * 1024);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  AlignedArena A(8192, 4096);
  std::byte *Base = A.base();
  AlignedArena B(std::move(A));
  EXPECT_EQ(B.base(), Base);
  EXPECT_EQ(A.base(), nullptr);
  AlignedArena C(4096, 4096);
  C = std::move(B);
  EXPECT_EQ(C.base(), Base);
}

TEST(ArenaTest, LazyCommitKeepsLargeReservationsCheap) {
  // A 1 GiB reservation must not consume 1 GiB of RAM.
  AlignedArena Arena(1ull << 30, 4096);
  Arena.base()[0] = std::byte{1};
  EXPECT_LT(Arena.residentBytes(), 64u * 1024 * 1024);
}

TEST(ArenaTest, TryReserveSucceedsWhereTheCtorWould) {
  std::string Error;
  std::optional<AlignedArena> Arena = AlignedArena::tryReserve(1 << 20, 32768, &Error);
  ASSERT_TRUE(Arena.has_value()) << Error;
  EXPECT_TRUE(Error.empty());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Arena->base()) % 32768, 0u);
  Arena->base()[0] = std::byte{1}; // writable
}

TEST(ArenaTest, TryReserveReportsImpossibleReservationWithErrno) {
  // An address-space-sized request must fail gracefully with the mmap
  // errno in the message, not abort the process like the constructor.
  std::string Error;
  std::optional<AlignedArena> Arena =
      AlignedArena::tryReserve(~uint64_t(0) >> 2, 4096, &Error);
  ASSERT_FALSE(Arena.has_value());
  EXPECT_NE(Error.find("mmap"), std::string::npos) << Error;
  EXPECT_NE(Error.find("failed"), std::string::npos) << Error;
}

TEST(ArenaTest, TryReserveHonorsTheArenaMapFaultSite) {
  FaultPlan Plan;
  std::string ParseError;
  ASSERT_TRUE(FaultPlan::parse("seed=1,arena_map:p=1", Plan, ParseError));
  FaultInjector::instance().arm(Plan);
  std::string Error;
  std::optional<AlignedArena> Arena =
      AlignedArena::tryReserve(1 << 20, 4096, &Error);
  FaultInjector::instance().disarm();
  ASSERT_FALSE(Arena.has_value());
  EXPECT_NE(Error.find("injected arena_map fault"), std::string::npos)
      << Error;
  // With the injector disarmed the identical request succeeds.
  EXPECT_TRUE(AlignedArena::tryReserve(1 << 20, 4096).has_value());
}

TEST(ArenaTest, ConcurrentReserveAndReleaseIsSafe) {
  // Native runs reserve per-thread heaps from several threads at once;
  // tryReserve/unmap must be safe to race (the kernel serializes mmap,
  // and the arena itself shares no mutable state between instances).
  constexpr int Threads = 4;
  constexpr int Rounds = 25;
  std::vector<std::thread> Workers;
  std::atomic<int> Failures{0};
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (int R = 0; R < Rounds; ++R) {
        std::optional<AlignedArena> Arena =
            AlignedArena::tryReserve(1 << 20, 32768);
        if (!Arena) {
          ++Failures;
          continue;
        }
        // Touch both ends: the mapping must be private to this instance.
        Arena->base()[0] = std::byte{1};
        Arena->base()[Arena->size() - 1] = std::byte{2};
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Failures.load(), 0);
}
