//===- tests/support/ArgParseTest.cpp - ArgParser unit tests --------------===//

#include "support/ArgParse.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

bool parseArgs(ArgParser &Parser, std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv = {"prog"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return Parser.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(ArgParseTest, AllTypesSpaceForm) {
  ArgParser P("test");
  std::string S = "def";
  int64_t I = 0;
  uint64_t U = 0;
  double D = 0;
  bool B = false;
  P.addFlag("s", &S, "string");
  P.addFlag("i", &I, "int");
  P.addFlag("u", &U, "uint");
  P.addFlag("d", &D, "double");
  P.addFlag("b", &B, "bool");
  EXPECT_TRUE(parseArgs(P, {"--s", "hello", "--i", "-3", "--u", "9", "--d",
                            "2.5", "--b"}));
  EXPECT_EQ(S, "hello");
  EXPECT_EQ(I, -3);
  EXPECT_EQ(U, 9u);
  EXPECT_DOUBLE_EQ(D, 2.5);
  EXPECT_TRUE(B);
}

TEST(ArgParseTest, EqualsForm) {
  ArgParser P("test");
  int64_t I = 0;
  bool B = true;
  P.addFlag("i", &I, "int");
  P.addFlag("b", &B, "bool");
  EXPECT_TRUE(parseArgs(P, {"--i=17", "--b=false"}));
  EXPECT_EQ(I, 17);
  EXPECT_FALSE(B);
}

TEST(ArgParseTest, NegatedBool) {
  ArgParser P("test");
  bool B = true;
  P.addFlag("color", &B, "bool");
  EXPECT_TRUE(parseArgs(P, {"--no-color"}));
  EXPECT_FALSE(B);
}

TEST(ArgParseTest, UnknownFlagFails) {
  ArgParser P("test");
  EXPECT_FALSE(parseArgs(P, {"--nope"}));
}

TEST(ArgParseTest, MissingValueFails) {
  ArgParser P("test");
  int64_t I = 0;
  P.addFlag("i", &I, "int");
  EXPECT_FALSE(parseArgs(P, {"--i"}));
}

TEST(ArgParseTest, BadNumberFails) {
  ArgParser P("test");
  int64_t I = 0;
  uint64_t U = 0;
  P.addFlag("i", &I, "int");
  P.addFlag("u", &U, "uint");
  EXPECT_FALSE(parseArgs(P, {"--i", "abc"}));
  ArgParser P2("test");
  P2.addFlag("u", &U, "uint");
  EXPECT_FALSE(parseArgs(P2, {"--u", "-1"}));
}

TEST(ArgParseTest, PositionalCollected) {
  ArgParser P("test");
  int64_t I = 0;
  P.addFlag("i", &I, "int");
  EXPECT_TRUE(parseArgs(P, {"alpha", "--i", "2", "beta"}));
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "alpha");
  EXPECT_EQ(P.positional()[1], "beta");
}

TEST(ArgParseTest, HelpTextListsFlagsAndDefaults) {
  ArgParser P("my tool");
  int64_t I = 42;
  P.addFlag("iterations", &I, "how many");
  std::string Help = P.helpText("prog");
  EXPECT_NE(Help.find("my tool"), std::string::npos);
  EXPECT_NE(Help.find("--iterations"), std::string::npos);
  EXPECT_NE(Help.find("42"), std::string::npos);
}

TEST(ArgParseTest, ParseUint64RejectsEveryStrtoullTrap) {
  // The exact values strtoull accepts silently: negatives (wrap to huge),
  // whitespace-prefixed negatives (skip the Value[0] check), out-of-range
  // (ERANGE, clamped to ULLONG_MAX), and trailing garbage.
  uint64_t V = 123;
  EXPECT_FALSE(parseUint64("-1", V));
  EXPECT_FALSE(parseUint64(" -1", V));
  EXPECT_FALSE(parseUint64("\t-5", V));
  EXPECT_FALSE(parseUint64("+3", V));
  EXPECT_FALSE(parseUint64("", V));
  EXPECT_FALSE(parseUint64(" ", V));
  EXPECT_FALSE(parseUint64("abc", V));
  EXPECT_FALSE(parseUint64("12abc", V));
  EXPECT_FALSE(parseUint64("1 ", V));
  EXPECT_FALSE(parseUint64("99999999999999999999", V)); // > 2^64-1
  EXPECT_FALSE(parseUint64(nullptr, V));
  EXPECT_EQ(V, 123u) << "failed parses must not clobber the output";
}

TEST(ArgParseTest, ParseUint64AcceptsWholeRange) {
  uint64_t V = 0;
  ASSERT_TRUE(parseUint64("0", V));
  EXPECT_EQ(V, 0u);
  ASSERT_TRUE(parseUint64("18446744073709551615", V)); // 2^64-1
  EXPECT_EQ(V, ~uint64_t(0));
  ASSERT_TRUE(parseUint64("0x10", V)); // base prefixes still work
  EXPECT_EQ(V, 16u);
}

TEST(ArgParseTest, ParseInt64RejectsRangeAndGarbage) {
  int64_t V = 5;
  EXPECT_FALSE(parseInt64("9223372036854775808", V));  // INT64_MAX + 1
  EXPECT_FALSE(parseInt64("-9223372036854775809", V)); // INT64_MIN - 1
  EXPECT_FALSE(parseInt64(" 1", V));
  EXPECT_FALSE(parseInt64("1x", V));
  EXPECT_FALSE(parseInt64("", V));
  EXPECT_EQ(V, 5);
  ASSERT_TRUE(parseInt64("-9223372036854775808", V));
  EXPECT_EQ(V, INT64_MIN);
}

TEST(ArgParseTest, UintFlagRejectsWhitespaceNegativeAndOverflow) {
  // Regression: "--seed=-1" used to wrap to 2^64-1 through strtoull when
  // hidden behind whitespace, and overflow was accepted as ULLONG_MAX.
  uint64_t U = 7;
  ArgParser P("test");
  P.addFlag("u", &U, "uint");
  EXPECT_FALSE(parseArgs(P, {"--u", " -1"}));
  ArgParser P2("test");
  P2.addFlag("u", &U, "uint");
  EXPECT_FALSE(parseArgs(P2, {"--u", "99999999999999999999"}));
  EXPECT_EQ(U, 7u);
}

TEST(ArgParseTest, IntFlagRejectsOverflow) {
  int64_t I = 3;
  ArgParser P("test");
  P.addFlag("i", &I, "int");
  EXPECT_FALSE(parseArgs(P, {"--i", "99999999999999999999"}));
  EXPECT_EQ(I, 3);
}
