//===- tests/support/RandomTest.cpp - Rng unit tests ----------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

using namespace ddm;

TEST(RandomTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 1000; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 5);
}

TEST(RandomTest, ReseedRestartsTheStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RandomTest, NextBelowStaysInRange) {
  Rng R(3);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RandomTest, NextBelowOneIsAlwaysZero) {
  Rng R(4);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Rng R(5);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextInRange(10, 12);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 12u);
    Seen.insert(V);
  }
  // All three values should appear in 1000 draws.
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng R(6);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, NextBoolMatchesProbability) {
  Rng R(8);
  int True30 = 0;
  for (int I = 0; I < 20000; ++I)
    True30 += R.nextBool(0.3);
  EXPECT_NEAR(True30 / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(R.nextBool(0.0));
  EXPECT_TRUE(R.nextBool(1.0));
}

TEST(RandomTest, GeometricMeanMatchesTheory) {
  Rng R(9);
  double P = 0.25;
  double Sum = 0;
  int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += static_cast<double>(R.nextGeometric(P));
  // Mean failures before success: (1-P)/P = 3.
  EXPECT_NEAR(Sum / N, 3.0, 0.15);
}

TEST(RandomTest, GeometricWithCertainSuccessIsZero) {
  Rng R(10);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextGeometric(1.0), 0u);
}

TEST(RandomTest, GaussianMoments) {
  Rng R(11);
  double Sum = 0, SumSq = 0;
  int N = 50000;
  for (int I = 0; I < N; ++I) {
    double V = R.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.03);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(RandomTest, LogNormalIsPositiveAndSkewed) {
  Rng R(12);
  double Sum = 0;
  int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.nextLogNormal(3.0, 1.0);
    ASSERT_GT(V, 0.0);
    Sum += V;
  }
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  EXPECT_NEAR(Sum / N, std::exp(3.5), std::exp(3.5) * 0.1);
}

TEST(RandomTest, SplitProducesIndependentStream) {
  Rng A(13);
  Rng Child = A.split();
  int Equal = 0;
  for (int I = 0; I < 1000; ++I)
    if (A.next() == Child.next())
      ++Equal;
  EXPECT_LT(Equal, 5);
}

TEST(RandomTest, StreamZeroMatchesThePlainGenerator) {
  // StreamId 0 must be byte-identical to the pre-stream behaviour: every
  // seeded sequence in the repo stays reproducible.
  Rng Plain(42);
  Rng Stream0(42, 0);
  for (int I = 0; I < 2000; ++I)
    ASSERT_EQ(Plain.next(), Stream0.next());
}

TEST(RandomTest, DistinctStreamsNeverOverlapLocally) {
  Rng S0(42, 0), S1(42, 1), S2(42, 2);
  int Equal01 = 0, Equal12 = 0;
  for (int I = 0; I < 2000; ++I) {
    uint64_t A = S0.next(), B = S1.next(), C = S2.next();
    Equal01 += A == B;
    Equal12 += B == C;
  }
  EXPECT_LT(Equal01, 5);
  EXPECT_LT(Equal12, 5);
}

TEST(RandomTest, StreamsAreReproducible) {
  Rng A(7, 3), B(7, 3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, StreamKIsKLongJumps) {
  // Stream construction is defined as k applications of longJump() on the
  // seeded state.
  Rng ByCtor(99, 2);
  Rng ByJump(99);
  ByJump.longJump();
  ByJump.longJump();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(ByCtor.next(), ByJump.next());
}

TEST(RandomTest, ReseedResetsTheStream) {
  Rng R(5, 4);
  std::vector<uint64_t> First;
  for (int I = 0; I < 100; ++I)
    First.push_back(R.next());
  R.reseed(5, 4);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.next(), First[I]);
}
