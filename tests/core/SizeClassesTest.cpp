//===- tests/core/SizeClassesTest.cpp - Size-class ladder tests -----------===//

#include "core/SizeClasses.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(SizeClassesTest, LadderForPaperSegmentSize) {
  // 32 KB segments -> small objects up to 16 KB.
  SizeClassMap Map(16 * 1024);
  // 16 classes at 8-byte spacing, 12 at 32-byte spacing, 5 powers of two.
  EXPECT_EQ(Map.numClasses(), 16u + 12u + 5u);
  EXPECT_EQ(Map.maxSmallSize(), 16u * 1024);
  EXPECT_EQ(Map.classSize(0), 8u);
  EXPECT_EQ(Map.classSize(15), 128u);
  EXPECT_EQ(Map.classSize(16), 160u);
  EXPECT_EQ(Map.classSize(27), 512u);
  EXPECT_EQ(Map.classSize(28), 1024u);
  EXPECT_EQ(Map.classSize(32), 16u * 1024);
}

TEST(SizeClassesTest, Rule1MultiplesOf8Below128) {
  SizeClassMap Map(16 * 1024);
  EXPECT_EQ(Map.roundedSize(1), 8u);
  EXPECT_EQ(Map.roundedSize(8), 8u);
  EXPECT_EQ(Map.roundedSize(9), 16u);
  EXPECT_EQ(Map.roundedSize(63), 64u);
  EXPECT_EQ(Map.roundedSize(121), 128u);
  EXPECT_EQ(Map.roundedSize(128), 128u);
}

TEST(SizeClassesTest, Rule2MultiplesOf32Below512) {
  SizeClassMap Map(16 * 1024);
  EXPECT_EQ(Map.roundedSize(129), 160u);
  EXPECT_EQ(Map.roundedSize(160), 160u);
  EXPECT_EQ(Map.roundedSize(161), 192u);
  EXPECT_EQ(Map.roundedSize(481), 512u);
  EXPECT_EQ(Map.roundedSize(512), 512u);
}

TEST(SizeClassesTest, Rule3PowersOfTwoAbove512) {
  SizeClassMap Map(16 * 1024);
  EXPECT_EQ(Map.roundedSize(513), 1024u);
  EXPECT_EQ(Map.roundedSize(1024), 1024u);
  EXPECT_EQ(Map.roundedSize(1025), 2048u);
  EXPECT_EQ(Map.roundedSize(5000), 8192u);
  EXPECT_EQ(Map.roundedSize(16 * 1024), 16u * 1024);
}

TEST(SizeClassesTest, ZeroMapsToSmallestClass) {
  SizeClassMap Map(16 * 1024);
  EXPECT_EQ(Map.classFor(0), 0u);
  EXPECT_EQ(Map.roundedSize(0), 8u);
}

TEST(SizeClassesTest, IsSmallBoundary) {
  SizeClassMap Map(16 * 1024);
  EXPECT_TRUE(Map.isSmall(16 * 1024));
  EXPECT_FALSE(Map.isSmall(16 * 1024 + 1));
}

TEST(SizeClassesTest, RoundTripAndMonotonicity) {
  SizeClassMap Map(16 * 1024);
  for (unsigned Class = 0; Class < Map.numClasses(); ++Class) {
    size_t Size = Map.classSize(Class);
    EXPECT_EQ(Map.classFor(Size), Class)
        << "class size must map back to its class (" << Size << ")";
    if (Class > 0) {
      EXPECT_GT(Size, Map.classSize(Class - 1));
    }
  }
  // Every size rounds up, never down.
  for (size_t Size = 0; Size <= 16 * 1024; Size += 7)
    EXPECT_GE(Map.roundedSize(Size), Size);
}

TEST(SizeClassesTest, SmallerSegmentShortensTheLadder) {
  SizeClassMap Map(4096);
  EXPECT_EQ(Map.maxSmallSize(), 4096u);
  EXPECT_EQ(Map.numClasses(), 16u + 12u + 3u); // 1024, 2048, 4096
}
