//===- tests/core/AllocatorFactoryTest.cpp - Factory unit tests -----------===//

#include "core/AllocatorFactory.h"
#include "core/DDmalloc.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(AllocatorFactoryTest, NamesRoundTrip) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    std::string Name = allocatorKindName(Kind);
    auto Parsed = allocatorKindFromName(Name);
    ASSERT_TRUE(Parsed.has_value()) << Name;
    EXPECT_EQ(*Parsed, Kind) << Name;
  }
}

TEST(AllocatorFactoryTest, UnknownNameRejected) {
  EXPECT_FALSE(allocatorKindFromName("dlmalloc").has_value());
  EXPECT_FALSE(allocatorKindFromName("").has_value());
  EXPECT_FALSE(allocatorKindFromName("DDMALLOC").has_value());
}

TEST(AllocatorFactoryTest, EveryKindConstructsAWorkingAllocator) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    AllocatorOptions Options;
    Options.HeapReserveBytes = 32ull * 1024 * 1024;
    auto A = createAllocator(Kind, Options);
    ASSERT_NE(A, nullptr);
    EXPECT_STREQ(A->name(), allocatorKindName(Kind));
    void *P = A->allocate(128);
    ASSERT_NE(P, nullptr);
    A->deallocate(P);
    EXPECT_EQ(A->stats().MallocCalls, 1u);
    EXPECT_EQ(A->stats().FreeCalls, 1u);
  }
}

TEST(AllocatorFactoryTest, OptionsReachDDmalloc) {
  AllocatorOptions Options;
  Options.SegmentSize = 16 * 1024;
  Options.ProcessId = 7;
  Options.HeapReserveBytes = 32ull * 1024 * 1024;
  Options.MetadataColoring = true;
  auto A = createAllocator(AllocatorKind::DDmalloc, Options);
  auto *DDm = dynamic_cast<DDmallocAllocator *>(A.get());
  ASSERT_NE(DDm, nullptr);
  EXPECT_EQ(DDm->config().SegmentSize, 16u * 1024);
  EXPECT_EQ(DDm->config().ProcessId, 7u);
  EXPECT_GT(DDm->metadataOffset(), 0u);
}

TEST(AllocatorFactoryTest, StudyGroupsAreConsistent) {
  // The PHP study compares three allocators; all support bulk free.
  auto Php = phpStudyAllocatorKinds();
  EXPECT_EQ(Php.size(), 3u);
  for (AllocatorKind Kind : Php)
    EXPECT_TRUE(createAllocator(Kind)->supportsBulkFree())
        << allocatorKindName(Kind);
  // The Ruby study compares four; only DDmalloc has bulk free (unused
  // there) and all have per-object free.
  auto Ruby = rubyStudyAllocatorKinds();
  EXPECT_EQ(Ruby.size(), 4u);
  for (AllocatorKind Kind : Ruby)
    EXPECT_TRUE(createAllocator(Kind)->supportsPerObjectFree())
        << allocatorKindName(Kind);
  // Table 1's capability matrix, by kind.
  EXPECT_FALSE(createAllocator(AllocatorKind::Region)->supportsPerObjectFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Obstack)->supportsPerObjectFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Glibc)->supportsBulkFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::TCMalloc)->supportsBulkFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Hoard)->supportsBulkFree());
}

TEST(AllocatorFactoryTest, CheckedConstructionSucceedsForEveryKind) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    AllocatorOptions Options;
    Options.HeapReserveBytes = 32ull * 1024 * 1024;
    Options.RegionChunkBytes = 32ull * 1024 * 1024;
    std::string Error;
    auto A = createAllocatorChecked(Kind, Options, Error);
    ASSERT_NE(A, nullptr) << allocatorKindName(Kind) << ": " << Error;
    EXPECT_TRUE(Error.empty());
    EXPECT_NE(A->allocate(64), nullptr);
  }
}

TEST(AllocatorFactoryTest, CheckedRejectsBadDDmallocConfiguration) {
  // The same configurations the constructor would abort on come back as
  // clean diagnostics instead.
  std::string Error;
  AllocatorOptions Options;
  Options.SegmentSize = 3000; // not a power of two
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::DDmalloc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("power of two"), std::string::npos) << Error;

  Options = AllocatorOptions();
  Options.HeapReserveBytes = 2 * Options.SegmentSize;
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::DDmalloc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("too small"), std::string::npos) << Error;
}

TEST(AllocatorFactoryTest, CheckedRejectsImpossibleReservation) {
  std::string Error;
  AllocatorOptions Options;
  Options.HeapReserveBytes = ~uint64_t(0) >> 2; // beyond any address space
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::Glibc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("too large for this system"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("mmap"), std::string::npos) << Error;
}

TEST(AllocatorFactoryTest, SeparateInstancesAreIndependentHeaps) {
  AllocatorOptions Options;
  Options.HeapReserveBytes = 16ull * 1024 * 1024;
  auto A = createAllocator(AllocatorKind::DDmalloc, Options);
  auto B = createAllocator(AllocatorKind::DDmalloc, Options);
  void *Pa = A->allocate(64);
  void *Pb = B->allocate(64);
  EXPECT_NE(Pa, Pb);
  auto *DDa = dynamic_cast<DDmallocAllocator *>(A.get());
  auto *DDb = dynamic_cast<DDmallocAllocator *>(B.get());
  EXPECT_TRUE(DDa->owns(Pa));
  EXPECT_FALSE(DDa->owns(Pb));
  EXPECT_TRUE(DDb->owns(Pb));
}
