//===- tests/core/AllocatorFactoryTest.cpp - Factory unit tests -----------===//

#include "core/AllocatorFactory.h"
#include "core/DDmalloc.h"
#include "page/PageBackend.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ddm;

TEST(AllocatorFactoryTest, NamesRoundTrip) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    std::string Name = allocatorKindName(Kind);
    auto Parsed = allocatorKindFromName(Name);
    ASSERT_TRUE(Parsed.has_value()) << Name;
    EXPECT_EQ(*Parsed, Kind) << Name;
  }
}

TEST(AllocatorFactoryTest, NameListIsTheFullZoo) {
  // Adding a kind means adding it here on purpose: every consumer of
  // allocatorNames() (CLI flags, bench sweeps, the README table) picks the
  // new allocator up from this one list.
  const std::vector<std::string> Expected = {
      "ddmalloc", "region",   "obstack", "default", "glibc",
      "tcmalloc", "hoard",    "slab",    "adaptive"};
  EXPECT_EQ(allocatorNames(), Expected);
  EXPECT_EQ(allAllocatorKinds().size(), Expected.size());
  std::string Joined = allocatorNamesJoined();
  for (const std::string &Name : Expected)
    EXPECT_NE(Joined.find(Name), std::string::npos) << Name;
}

TEST(AllocatorFactoryTest, ReadmeAllocatorTableStaysInSync) {
  // The README's zoo table must list every factory name. Walk up from the
  // test's working directory to find the repo root.
  namespace fs = std::filesystem;
  fs::path Dir = fs::current_path();
  fs::path Readme;
  for (int Depth = 0; Depth < 8; ++Depth) {
    fs::path Candidate = Dir / "README.md";
    std::error_code Ec;
    if (fs::exists(Candidate, Ec)) {
      Readme = Candidate;
      break;
    }
    if (!Dir.has_parent_path() || Dir.parent_path() == Dir)
      break;
    Dir = Dir.parent_path();
  }
  if (Readme.empty())
    GTEST_SKIP() << "README.md not reachable from the test working directory";
  std::ifstream In(Readme);
  ASSERT_TRUE(In.good()) << Readme;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  const std::string Text = Buffer.str();
  for (const std::string &Name : allocatorNames())
    EXPECT_NE(Text.find("| `" + Name + "`"), std::string::npos)
        << "README.md zoo table is missing allocator '" << Name << "'";
}

TEST(AllocatorFactoryTest, BackendCapableKindsDrawFromABuddyBackend) {
  // Every allocator that accepts a page backend really routes its heap
  // span through it — and returns the span when the allocator dies.
  auto Backend = createBuddyBackend(512ull * 1024 * 1024);
  for (AllocatorKind Kind :
       {AllocatorKind::Region, AllocatorKind::Obstack, AllocatorKind::Default,
        AllocatorKind::Glibc, AllocatorKind::Slab}) {
    const uint64_t LiveBefore = Backend->stats().PagesLive;
    {
      AllocatorOptions Options;
      Options.HeapReserveBytes = 16ull * 1024 * 1024;
      Options.RegionChunkBytes = 16ull * 1024 * 1024;
      Options.Backend = Backend;
      auto A = createAllocator(Kind, Options);
      void *P = A->allocate(256);
      ASSERT_NE(P, nullptr) << allocatorKindName(Kind);
      EXPECT_TRUE(Backend->contains(P))
          << allocatorKindName(Kind) << " ignored the page backend";
      EXPECT_GT(Backend->stats().PagesLive, LiveBefore)
          << allocatorKindName(Kind);
    }
    EXPECT_EQ(Backend->stats().PagesLive, LiveBefore)
        << allocatorKindName(Kind) << " leaked backend pages";
  }
  EXPECT_GT(Backend->stats().PagesReclaimed, 0u);
}

TEST(AllocatorFactoryTest, UnknownNameRejected) {
  EXPECT_FALSE(allocatorKindFromName("dlmalloc").has_value());
  EXPECT_FALSE(allocatorKindFromName("").has_value());
  EXPECT_FALSE(allocatorKindFromName("DDMALLOC").has_value());
}

TEST(AllocatorFactoryTest, EveryKindConstructsAWorkingAllocator) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    AllocatorOptions Options;
    Options.HeapReserveBytes = 32ull * 1024 * 1024;
    auto A = createAllocator(Kind, Options);
    ASSERT_NE(A, nullptr);
    EXPECT_STREQ(A->name(), allocatorKindName(Kind));
    void *P = A->allocate(128);
    ASSERT_NE(P, nullptr);
    A->deallocate(P);
    EXPECT_EQ(A->stats().MallocCalls, 1u);
    EXPECT_EQ(A->stats().FreeCalls, 1u);
  }
}

TEST(AllocatorFactoryTest, OptionsReachDDmalloc) {
  AllocatorOptions Options;
  Options.SegmentSize = 16 * 1024;
  Options.ProcessId = 7;
  Options.HeapReserveBytes = 32ull * 1024 * 1024;
  Options.MetadataColoring = true;
  auto A = createAllocator(AllocatorKind::DDmalloc, Options);
  auto *DDm = dynamic_cast<DDmallocAllocator *>(A.get());
  ASSERT_NE(DDm, nullptr);
  EXPECT_EQ(DDm->config().SegmentSize, 16u * 1024);
  EXPECT_EQ(DDm->config().ProcessId, 7u);
  EXPECT_GT(DDm->metadataOffset(), 0u);
}

TEST(AllocatorFactoryTest, StudyGroupsAreConsistent) {
  // The PHP study compares three allocators; all support bulk free.
  auto Php = phpStudyAllocatorKinds();
  EXPECT_EQ(Php.size(), 3u);
  for (AllocatorKind Kind : Php)
    EXPECT_TRUE(createAllocator(Kind)->supportsBulkFree())
        << allocatorKindName(Kind);
  // The Ruby study compares four; only DDmalloc has bulk free (unused
  // there) and all have per-object free.
  auto Ruby = rubyStudyAllocatorKinds();
  EXPECT_EQ(Ruby.size(), 4u);
  for (AllocatorKind Kind : Ruby)
    EXPECT_TRUE(createAllocator(Kind)->supportsPerObjectFree())
        << allocatorKindName(Kind);
  // Table 1's capability matrix, by kind.
  EXPECT_FALSE(createAllocator(AllocatorKind::Region)->supportsPerObjectFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Obstack)->supportsPerObjectFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Glibc)->supportsBulkFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::TCMalloc)->supportsBulkFree());
  EXPECT_FALSE(createAllocator(AllocatorKind::Hoard)->supportsBulkFree());
}

TEST(AllocatorFactoryTest, CheckedConstructionSucceedsForEveryKind) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    AllocatorOptions Options;
    Options.HeapReserveBytes = 32ull * 1024 * 1024;
    Options.RegionChunkBytes = 32ull * 1024 * 1024;
    std::string Error;
    auto A = createAllocatorChecked(Kind, Options, Error);
    ASSERT_NE(A, nullptr) << allocatorKindName(Kind) << ": " << Error;
    EXPECT_TRUE(Error.empty());
    EXPECT_NE(A->allocate(64), nullptr);
  }
}

TEST(AllocatorFactoryTest, CheckedRejectsBadDDmallocConfiguration) {
  // The same configurations the constructor would abort on come back as
  // clean diagnostics instead.
  std::string Error;
  AllocatorOptions Options;
  Options.SegmentSize = 3000; // not a power of two
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::DDmalloc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("power of two"), std::string::npos) << Error;

  Options = AllocatorOptions();
  Options.HeapReserveBytes = 2 * Options.SegmentSize;
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::DDmalloc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("too small"), std::string::npos) << Error;
}

TEST(AllocatorFactoryTest, CheckedRejectsImpossibleReservation) {
  std::string Error;
  AllocatorOptions Options;
  Options.HeapReserveBytes = ~uint64_t(0) >> 2; // beyond any address space
  EXPECT_EQ(createAllocatorChecked(AllocatorKind::Glibc, Options, Error),
            nullptr);
  EXPECT_NE(Error.find("too large for this system"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("mmap"), std::string::npos) << Error;
}

TEST(AllocatorFactoryTest, SeparateInstancesAreIndependentHeaps) {
  AllocatorOptions Options;
  Options.HeapReserveBytes = 16ull * 1024 * 1024;
  auto A = createAllocator(AllocatorKind::DDmalloc, Options);
  auto B = createAllocator(AllocatorKind::DDmalloc, Options);
  void *Pa = A->allocate(64);
  void *Pb = B->allocate(64);
  EXPECT_NE(Pa, Pb);
  auto *DDa = dynamic_cast<DDmallocAllocator *>(A.get());
  auto *DDb = dynamic_cast<DDmallocAllocator *>(B.get());
  EXPECT_TRUE(DDa->owns(Pa));
  EXPECT_FALSE(DDa->owns(Pb));
  EXPECT_TRUE(DDb->owns(Pb));
}
