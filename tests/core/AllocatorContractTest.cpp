//===- tests/core/AllocatorContractTest.cpp - Cross-allocator laws --------===//
///
/// \file
/// Property tests every allocator in the study must satisfy, parameterized
/// over (allocator kind, RNG seed). The invariants:
///  - results are non-null (within the reservation) and 8-byte aligned;
///  - live objects never overlap and their contents survive arbitrary
///    interleavings of malloc/free/realloc;
///  - for allocators without per-object free, contents survive deallocate
///    too (until freeAll);
///  - freeAll (where supported) discards everything and bounds footprint
///    across transactions;
///  - per-object free actually enables reuse (bounded footprint under
///    churn), and its absence means unbounded growth — the paper's Table 1
///    capability matrix, enforced in code.
///
//===----------------------------------------------------------------------===//

#include "core/AllocatorFactory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

using namespace ddm;

namespace {

struct TrackedObject {
  unsigned char *Ptr;
  size_t Size;
  unsigned char Pattern;
  bool Freed; ///< deallocate was called (only kept for no-reuse allocators).
};

class AllocatorContractTest
    : public ::testing::TestWithParam<std::tuple<AllocatorKind, uint64_t>> {
protected:
  AllocatorKind kind() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  std::unique_ptr<TxAllocator> makeAllocator() const {
    AllocatorOptions Options;
    Options.HeapReserveBytes = 128ull * 1024 * 1024;
    return createAllocator(kind(), Options);
  }

  static void checkPattern(const TrackedObject &Object) {
    for (size_t I = 0; I < Object.Size; I += 53)
      ASSERT_EQ(Object.Ptr[I], Object.Pattern)
          << "content corrupted (size " << Object.Size << ")";
  }
};

} // namespace

TEST_P(AllocatorContractTest, AlignmentAndNonNull) {
  auto A = makeAllocator();
  for (size_t Size : {0ul, 1ul, 3ul, 8ul, 13ul, 64ul, 100ul, 1000ul, 5000ul}) {
    void *P = A->allocate(Size);
    ASSERT_NE(P, nullptr) << "size " << Size;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u) << "size " << Size;
  }
}

TEST_P(AllocatorContractTest, ZeroSizeAllocationsAreDistinct) {
  auto A = makeAllocator();
  void *P = A->allocate(0);
  void *Q = A->allocate(0);
  EXPECT_NE(P, Q);
}

TEST_P(AllocatorContractTest, UsableSizeCoversRequest) {
  auto A = makeAllocator();
  for (size_t Size : {1ul, 17ul, 256ul, 4000ul}) {
    void *P = A->allocate(Size);
    ASSERT_NE(P, nullptr);
    size_t Usable = A->usableSize(P);
    if (Usable != 0) { // headerless region allocators report 0
      EXPECT_GE(Usable, Size);
    }
  }
}

TEST_P(AllocatorContractTest, RandomOperationsPreserveContents) {
  auto A = makeAllocator();
  Rng R(seed());
  std::vector<TrackedObject> Objects;
  bool Reuses = A->supportsPerObjectFree();
  bool BulkFree = A->supportsBulkFree();
  uint64_t LiveCount = 0;

  for (int Step = 0; Step < 6000; ++Step) {
    double Action = R.nextDouble();
    if (BulkFree && Step > 0 && Step % 2000 == 0) {
      // Transaction boundary: everything dies at once.
      for (const TrackedObject &Object : Objects)
        if (!Object.Freed)
          checkPattern(Object);
      A->freeAll();
      Objects.clear();
      LiveCount = 0;
      continue;
    }
    if (LiveCount == 0 || Action < 0.55) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(3.6, 1.3));
      if (Size > 40000)
        Size = 40000;
      auto *P = static_cast<unsigned char *>(A->allocate(Size));
      ASSERT_NE(P, nullptr);
      auto Pattern = static_cast<unsigned char>(R.next() | 1);
      std::memset(P, Pattern, Size);
      Objects.push_back({P, Size, Pattern, false});
      ++LiveCount;
    } else if (Action < 0.85) {
      // Free a random live object.
      size_t Index = R.nextBelow(Objects.size());
      while (Objects[Index].Freed)
        Index = (Index + 1) % Objects.size();
      TrackedObject &Object = Objects[Index];
      checkPattern(Object);
      A->deallocate(Object.Ptr);
      --LiveCount;
      if (Reuses) {
        // The slot may be recycled: stop tracking it.
        Objects[Index] = Objects.back();
        Objects.pop_back();
      } else {
        // No reuse: the bytes must stay intact until freeAll.
        Object.Freed = true;
      }
    } else {
      size_t Index = R.nextBelow(Objects.size());
      while (Objects[Index].Freed)
        Index = (Index + 1) % Objects.size();
      TrackedObject &Object = Objects[Index];
      size_t NewSize = 1 + static_cast<size_t>(R.nextLogNormal(3.6, 1.3));
      if (NewSize > 40000)
        NewSize = 40000;
      auto *P = static_cast<unsigned char *>(
          A->reallocate(Object.Ptr, Object.Size, NewSize));
      ASSERT_NE(P, nullptr);
      size_t Preserved = Object.Size < NewSize ? Object.Size : NewSize;
      for (size_t I = 0; I < Preserved; I += 53)
        ASSERT_EQ(P[I], Object.Pattern);
      unsigned char Pattern = Object.Pattern;
      if (!Reuses && P != Object.Ptr) {
        // The old copy is still addressable in a region; keep checking it.
        // (Mutate through the vector before push_back invalidates Object.)
        Objects[Index].Freed = true;
        std::memset(P, Pattern, NewSize);
        Objects.push_back({P, NewSize, Pattern, false});
      } else {
        Object.Ptr = P;
        Object.Size = NewSize;
        std::memset(P, Pattern, NewSize);
      }
    }
  }
  for (const TrackedObject &Object : Objects)
    if (!Object.Freed)
      checkPattern(Object);
}

TEST_P(AllocatorContractTest, LiveObjectsNeverOverlap) {
  auto A = makeAllocator();
  Rng R(seed() ^ 0xABCD);
  std::map<uintptr_t, size_t> Live; // start -> size
  std::vector<void *> Order;
  for (int Step = 0; Step < 3000; ++Step) {
    if (Order.empty() || R.nextBool(0.6)) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(3.0, 1.4));
      void *P = A->allocate(Size);
      ASSERT_NE(P, nullptr);
      auto Start = reinterpret_cast<uintptr_t>(P);
      auto After = Live.lower_bound(Start);
      if (After != Live.end()) {
        ASSERT_LE(Start + Size, After->first) << "overlap with next object";
      }
      if (After != Live.begin()) {
        auto Before = std::prev(After);
        ASSERT_LE(Before->first + Before->second, Start)
            << "overlap with previous object";
      }
      Live.emplace(Start, Size);
      Order.push_back(P);
    } else if (A->supportsPerObjectFree()) {
      size_t Index = R.nextBelow(Order.size());
      void *P = Order[Index];
      Live.erase(reinterpret_cast<uintptr_t>(P));
      A->deallocate(P);
      Order[Index] = Order.back();
      Order.pop_back();
    }
  }
}

TEST_P(AllocatorContractTest, PerObjectFreeControlsReuse) {
  // Table 1's capability matrix: with per-object free, a tight
  // allocate/deallocate loop stays in O(1) memory; without it, memory
  // consumption grows with every allocation.
  auto A = makeAllocator();
  constexpr int Rounds = 5000;
  constexpr size_t Size = 256;
  for (int I = 0; I < Rounds; ++I) {
    void *P = A->allocate(Size);
    ASSERT_NE(P, nullptr);
    A->deallocate(P);
  }
  uint64_t Consumption = A->memoryConsumption();
  if (A->supportsPerObjectFree())
    EXPECT_LT(Consumption, 1024u * 1024)
        << "reuse should bound the footprint";
  else
    EXPECT_GE(Consumption, Rounds * Size)
        << "a region cannot reuse freed objects";
}

TEST_P(AllocatorContractTest, FreeAllBoundsFootprintAcrossTransactions) {
  auto A = makeAllocator();
  if (!A->supportsBulkFree())
    GTEST_SKIP() << "no bulk free: the Ruby study restarts processes";
  Rng R(seed());
  uint64_t FirstTxConsumption = 0;
  for (int Tx = 0; Tx < 20; ++Tx) {
    for (int I = 0; I < 500; ++I) {
      void *P = A->allocate(R.nextInRange(8, 2048));
      ASSERT_NE(P, nullptr);
      if (A->supportsPerObjectFree() && R.nextBool(0.5))
        A->deallocate(P);
    }
    uint64_t Consumption = A->memoryConsumption();
    if (Tx == 0)
      FirstTxConsumption = Consumption;
    // Footprint must not creep across transactions (allow 3x slack for
    // randomness in sizes).
    EXPECT_LE(Consumption, 3 * FirstTxConsumption + (1 << 20))
        << "transaction " << Tx;
    A->freeAll();
  }
  EXPECT_EQ(A->stats().UsableBytesLive, 0u);
}

TEST_P(AllocatorContractTest, StatsAreConsistent) {
  auto A = makeAllocator();
  Rng R(seed());
  uint64_t Mallocs = 0, Frees = 0;
  std::vector<std::pair<void *, size_t>> Live;
  for (int I = 0; I < 500; ++I) {
    size_t Size = R.nextInRange(1, 1000);
    void *P = A->allocate(Size);
    ASSERT_NE(P, nullptr);
    ++Mallocs;
    Live.push_back({P, Size});
    if (Live.size() > 50) {
      A->deallocate(Live.front().first);
      ++Frees;
      Live.erase(Live.begin());
    }
  }
  EXPECT_EQ(A->stats().MallocCalls, Mallocs);
  EXPECT_EQ(A->stats().FreeCalls, Frees);
  EXPECT_GT(A->stats().BytesRequested, 0u);
  // Live accounting covers at least the requested bytes still alive.
  uint64_t RequestedLive = 0;
  for (const auto &[Ptr, Size] : Live)
    RequestedLive += Size;
  EXPECT_GE(A->stats().UsableBytesLive, RequestedLive);
  EXPECT_GE(A->stats().PeakUsableBytesLive, A->stats().UsableBytesLive);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AllocatorContractTest,
    ::testing::Combine(::testing::ValuesIn(allAllocatorKinds()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<AllocatorKind, uint64_t>> &Info) {
      return std::string(allocatorKindName(std::get<0>(Info.param))) +
             "_seed" + std::to_string(std::get<1>(Info.param));
    });
