//===- tests/core/HeapVerifierTest.cpp - Negative tests of verify() -------===//
///
/// \file
/// The boundary-tag heap's verify() walker is itself test infrastructure,
/// so these tests corrupt a healthy heap on purpose and check that every
/// class of damage is caught. (A verifier that returns true on a corrupt
/// heap would silently weaken the whole property suite.)
///
//===----------------------------------------------------------------------===//

#include "core/BoundaryTagHeap.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

/// Builds a heap with an in-use chunk sandwiched between a free chunk and
/// a guard, returning the payload pointers.
struct Fixture {
  BoundaryTagHeap Heap{4 * 1024 * 1024};
  void *FreePayload;   ///< A freed chunk sitting in a bin.
  void *MiddlePayload; ///< In use, after the free chunk.
  void *GuardPayload;  ///< In use, keeps everything off the wilderness.

  Fixture() {
    FreePayload = Heap.malloc(256);
    MiddlePayload = Heap.malloc(128);
    GuardPayload = Heap.malloc(64);
    Heap.free(FreePayload);
    EXPECT_TRUE(Heap.verify());
  }

  uint64_t &headerOf(void *Payload) {
    return *reinterpret_cast<uint64_t *>(static_cast<std::byte *>(Payload) - 8);
  }
};

} // namespace

TEST(HeapVerifierTest, DetectsCorruptedChunkSize) {
  Fixture F;
  F.headerOf(F.MiddlePayload) += 16; // grow the recorded size
  EXPECT_FALSE(F.Heap.verify());
}

TEST(HeapVerifierTest, DetectsShrunkChunkSize) {
  Fixture F;
  // Shrinking a chunk makes the walk land mid-payload, where the bytes do
  // not form a valid header.
  F.headerOf(F.MiddlePayload) -= 16;
  EXPECT_FALSE(F.Heap.verify());
}

TEST(HeapVerifierTest, DetectsStalePrevInUseFlag) {
  Fixture F;
  // MiddlePayload follows the freed chunk, so its prev-in-use must be 0.
  F.headerOf(F.MiddlePayload) |= 2;
  EXPECT_FALSE(F.Heap.verify());
}

TEST(HeapVerifierTest, DetectsFooterMismatch) {
  Fixture F;
  uint64_t Size = F.headerOf(F.FreePayload) & ~15ull;
  auto *Chunk = static_cast<std::byte *>(F.FreePayload) - 8;
  *reinterpret_cast<uint64_t *>(Chunk + Size - 8) = Size + 16;
  EXPECT_FALSE(F.Heap.verify());
}

TEST(HeapVerifierTest, DetectsFreeChunkMissingFromBins) {
  Fixture F;
  // Flip the free chunk to "free" bit pattern inconsistency: mark the
  // in-use middle chunk free without inserting it into any bin.
  uint64_t &Header = F.headerOf(F.MiddlePayload);
  uint64_t Size = Header & ~15ull;
  Header &= ~1ull; // clear in-use
  // Give it a plausible footer so only the bin check can catch it.
  auto *Chunk = static_cast<std::byte *>(F.MiddlePayload) - 8;
  *reinterpret_cast<uint64_t *>(Chunk + Size - 8) = Size;
  EXPECT_FALSE(F.Heap.verify());
}

TEST(HeapVerifierTest, DetectsBrokenBinBackLink) {
  Fixture F;
  // Free another chunk of the same size so the bin has two nodes, then
  // scramble a back-link.
  void *Second = F.Heap.malloc(256);
  void *Guard = F.Heap.malloc(64);
  F.Heap.free(Second);
  ASSERT_TRUE(F.Heap.verify());
  auto *Chunk = static_cast<std::byte *>(Second) - 8;
  *reinterpret_cast<std::byte **>(Chunk + 16) = Chunk; // bck -> itself
  EXPECT_FALSE(F.Heap.verify());
  (void)Guard;
}

TEST(HeapVerifierTest, CleanHeapAlwaysVerifies) {
  BoundaryTagHeap Heap(1 * 1024 * 1024);
  EXPECT_TRUE(Heap.verify()); // empty
  std::vector<void *> Ptrs;
  for (int I = 0; I < 200; ++I)
    Ptrs.push_back(Heap.malloc(32 + (I % 7) * 48));
  EXPECT_TRUE(Heap.verify());
  for (size_t I = 0; I < Ptrs.size(); I += 2)
    Heap.free(Ptrs[I]);
  EXPECT_TRUE(Heap.verify());
  Heap.reset();
  EXPECT_TRUE(Heap.verify());
}
