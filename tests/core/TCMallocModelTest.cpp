//===- tests/core/TCMallocModelTest.cpp - TCmalloc model tests ------------===//

#include "core/TCMallocModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace ddm;

namespace {

TCMallocConfig smallConfig() {
  TCMallocConfig Config;
  Config.HeapReserveBytes = 64ull * 1024 * 1024;
  return Config;
}

} // namespace

TEST(TCMallocModelTest, FreedObjectsComeBackFromTheCache) {
  TCMallocModelAllocator A(smallConfig());
  void *P = A.allocate(64);
  A.deallocate(P);
  EXPECT_EQ(A.allocate(64), P); // LIFO thread cache
}

TEST(TCMallocModelTest, CacheBytesTrackFrees) {
  TCMallocModelAllocator A(smallConfig());
  void *P = A.allocate(256); // carves a span into the cache first
  uint64_t Before = A.threadCacheBytes();
  A.deallocate(P);
  EXPECT_EQ(A.threadCacheBytes(), Before + 256);
  void *Q = A.allocate(256);
  EXPECT_EQ(A.threadCacheBytes(), Before);
  A.deallocate(Q);
}

TEST(TCMallocModelTest, ScavengeTriggersExactlyAtThreshold) {
  TCMallocConfig Config = smallConfig();
  Config.ScavengeThresholdBytes = 64 * 1024;
  TCMallocModelAllocator A(Config);
  // Allocate enough objects, then free them all: the cache grows past the
  // threshold and must scavenge (the paper's "delayed defragmentation").
  std::vector<void *> Ptrs;
  for (int I = 0; I < 2000; ++I)
    Ptrs.push_back(A.allocate(128));
  EXPECT_EQ(A.scavengeCount(), 0u);
  for (void *P : Ptrs)
    A.deallocate(P);
  EXPECT_GT(A.scavengeCount(), 0u);
  // After a scavenge the cache shrank back under the threshold.
  EXPECT_LE(A.threadCacheBytes(), Config.ScavengeThresholdBytes);
}

TEST(TCMallocModelTest, RefillPullsFromCentralAfterScavenge) {
  TCMallocConfig Config = smallConfig();
  Config.ScavengeThresholdBytes = 32 * 1024;
  TCMallocModelAllocator A(Config);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 1000; ++I)
    Ptrs.push_back(A.allocate(64));
  for (void *P : Ptrs)
    A.deallocate(P);
  ASSERT_GT(A.scavengeCount(), 0u);
  uint64_t ConsumptionAfter = A.memoryConsumption();
  // Re-allocating must reuse central stock, not grow the heap.
  for (int I = 0; I < 1000; ++I)
    ASSERT_NE(A.allocate(64), nullptr);
  EXPECT_EQ(A.memoryConsumption(), ConsumptionAfter);
}

TEST(TCMallocModelTest, LargeObjectsUsePageRuns) {
  TCMallocModelAllocator A(smallConfig());
  void *P = A.allocate(100 * 1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % (8 * 1024), 0u);
  EXPECT_EQ(A.usableSize(P), 104u * 1024); // 13 pages
  A.deallocate(P);
  EXPECT_EQ(A.freeRunCount(), 1u);
  // The freed run is reused.
  EXPECT_EQ(A.allocate(100 * 1024), P);
}

TEST(TCMallocModelTest, AdjacentLargeRunsCoalesce) {
  TCMallocModelAllocator A(smallConfig());
  void *P1 = A.allocate(64 * 1024);
  void *P2 = A.allocate(64 * 1024);
  void *Guard = A.allocate(64 * 1024);
  A.deallocate(P1);
  A.deallocate(P2);
  EXPECT_EQ(A.freeRunCount(), 1u); // merged into one run
  // The merged run serves a double-size object.
  EXPECT_EQ(A.allocate(128 * 1024), P1);
  (void)Guard;
}

TEST(TCMallocModelTest, UsableSizeMatchesClassSize) {
  TCMallocModelAllocator A(smallConfig());
  void *P = A.allocate(100);
  EXPECT_EQ(A.usableSize(P), 104u);
}

TEST(TCMallocModelTest, ReallocPreservesContent) {
  TCMallocModelAllocator A(smallConfig());
  auto *P = static_cast<unsigned char *>(A.allocate(64));
  std::memset(P, 0x21, 64);
  auto *Q = static_cast<unsigned char *>(A.reallocate(P, 64, 1024));
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Q[I], 0x21);
}

TEST(TCMallocModelTest, NoBulkFree) {
  TCMallocModelAllocator A(smallConfig());
  EXPECT_FALSE(A.supportsBulkFree());
  EXPECT_TRUE(A.supportsPerObjectFree());
}

TEST(TCMallocModelTest, RandomizedIntegrity) {
  TCMallocModelAllocator A(smallConfig());
  Rng R(11);
  struct LiveObject {
    unsigned char *Ptr;
    size_t Size;
    unsigned char Pattern;
  };
  std::vector<LiveObject> Live;
  for (int Step = 0; Step < 10000; ++Step) {
    if (Live.empty() || R.nextBool(0.52)) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(3.5, 1.3));
      if (Size > 50000)
        Size = 50000;
      auto *P = static_cast<unsigned char *>(A.allocate(Size));
      ASSERT_NE(P, nullptr);
      auto Pattern = static_cast<unsigned char>(R.next());
      std::memset(P, Pattern, Size);
      Live.push_back({P, Size, Pattern});
    } else {
      size_t Index = R.nextBelow(Live.size());
      LiveObject Object = Live[Index];
      for (size_t I = 0; I < Object.Size; I += 83)
        ASSERT_EQ(Object.Ptr[I], Object.Pattern);
      A.deallocate(Object.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    }
  }
}
