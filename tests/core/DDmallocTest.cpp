//===- tests/core/DDmallocTest.cpp - DDmalloc unit tests ------------------===//

#include "core/DDmalloc.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace ddm;

namespace {

DDmallocConfig smallHeapConfig() {
  DDmallocConfig Config;
  Config.HeapReserveBytes = 16ull * 1024 * 1024;
  return Config;
}

} // namespace

TEST(DDmallocTest, ReturnsAlignedNonNull) {
  DDmallocAllocator A(smallHeapConfig());
  for (size_t Size : {0ul, 1ul, 7ul, 8ul, 100ul, 512ul, 4000ul}) {
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
    EXPECT_TRUE(A.owns(P));
  }
}

TEST(DDmallocTest, LazySegmentCarving) {
  // Paper Figure 3: the first malloc of a class takes a fresh segment's
  // first object; the next malloc takes the adjacent object.
  DDmallocAllocator A(smallHeapConfig());
  auto *First = static_cast<std::byte *>(A.allocate(100)); // class 104
  auto *Second = static_cast<std::byte *>(A.allocate(100));
  EXPECT_EQ(Second, First + 104);
  // The first object of a segment starts at the segment base.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(First) % A.config().SegmentSize, 0u);
}

TEST(DDmallocTest, FreedObjectsReusedInLifoOrder) {
  DDmallocAllocator A(smallHeapConfig());
  void *P1 = A.allocate(64);
  void *P2 = A.allocate(64);
  void *P3 = A.allocate(64);
  A.deallocate(P1);
  A.deallocate(P2);
  A.deallocate(P3);
  // LIFO: the most recently freed object comes back first.
  EXPECT_EQ(A.allocate(64), P3);
  EXPECT_EQ(A.allocate(64), P2);
  EXPECT_EQ(A.allocate(64), P1);
}

TEST(DDmallocTest, ClassesDoNotShareFreeLists) {
  DDmallocAllocator A(smallHeapConfig());
  void *P64 = A.allocate(64);
  A.deallocate(P64);
  // A different class must not pick up the freed 64-byte object.
  void *P128 = A.allocate(128);
  EXPECT_NE(P128, P64);
  // The same class does.
  EXPECT_EQ(A.allocate(64), P64);
}

TEST(DDmallocTest, NoPerObjectHeaders) {
  // Objects of one class are exactly class-size apart: no header bytes.
  DDmallocAllocator A(smallHeapConfig());
  auto *P1 = static_cast<std::byte *>(A.allocate(40));
  auto *P2 = static_cast<std::byte *>(A.allocate(40));
  EXPECT_EQ(P2 - P1, 40);
}

TEST(DDmallocTest, UsableSizeIsClassSize) {
  DDmallocAllocator A(smallHeapConfig());
  void *P = A.allocate(100);
  EXPECT_EQ(A.usableSize(P), 104u);
  void *Q = A.allocate(600);
  EXPECT_EQ(A.usableSize(Q), 1024u);
}

TEST(DDmallocTest, LargeObjectsTakeWholeSegments) {
  DDmallocAllocator A(smallHeapConfig());
  size_t SegmentSize = A.config().SegmentSize;
  void *P = A.allocate(SegmentSize / 2 + 1); // just over the threshold
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % SegmentSize, 0u);
  EXPECT_EQ(A.usableSize(P), SegmentSize);

  void *Q = A.allocate(3 * SegmentSize - 100);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(A.usableSize(Q), 3 * SegmentSize);
  A.deallocate(Q);
  A.deallocate(P);
}

TEST(DDmallocTest, FreedLargeSegmentsAreReused) {
  DDmallocAllocator A(smallHeapConfig());
  size_t SegmentSize = A.config().SegmentSize;
  void *P = A.allocate(SegmentSize);
  uint64_t UsedAfterFirst = A.segmentsInUse();
  A.deallocate(P);
  void *Q = A.allocate(SegmentSize);
  EXPECT_EQ(Q, P);
  EXPECT_EQ(A.segmentsInUse(), UsedAfterFirst);
}

TEST(DDmallocTest, FreeAllRestoresInitialState) {
  DDmallocAllocator A(smallHeapConfig());
  std::vector<void *> FirstRound;
  Rng R(1);
  for (int I = 0; I < 1000; ++I)
    FirstRound.push_back(A.allocate(R.nextInRange(1, 2000)));
  EXPECT_GT(A.segmentsInUse(), 0u);

  A.freeAll();
  EXPECT_EQ(A.segmentsInUse(), 0u);
  EXPECT_EQ(A.stats().UsableBytesLive, 0u);

  // The exact same addresses come back in the same order: the heap is in
  // its initial state again.
  R.reseed(1);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.allocate(R.nextInRange(1, 2000)), FirstRound[I]);
}

TEST(DDmallocTest, FreeAllWorksAfterEverythingWasFreedPerObject) {
  // The paper: "applications need to call freeAll even if all of the
  // objects in the heap have already been freed by per-object free".
  DDmallocAllocator A(smallHeapConfig());
  void *P = A.allocate(64);
  A.deallocate(P);
  A.freeAll();
  EXPECT_EQ(A.segmentsInUse(), 0u);
  EXPECT_NE(A.allocate(64), nullptr);
}

TEST(DDmallocTest, ReallocSameClassKeepsPointer) {
  DDmallocAllocator A(smallHeapConfig());
  void *P = A.allocate(100); // class 104
  std::memset(P, 0x5A, 100);
  EXPECT_EQ(A.reallocate(P, 100, 104), P);
  EXPECT_EQ(A.reallocate(P, 104, 97), P);
}

TEST(DDmallocTest, ReallocGrowCopiesContent) {
  DDmallocAllocator A(smallHeapConfig());
  auto *P = static_cast<unsigned char *>(A.allocate(64));
  for (int I = 0; I < 64; ++I)
    P[I] = static_cast<unsigned char>(I);
  auto *Q = static_cast<unsigned char *>(A.reallocate(P, 64, 512));
  ASSERT_NE(Q, nullptr);
  EXPECT_NE(Q, P);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Q[I], static_cast<unsigned char>(I));
  EXPECT_GE(A.usableSize(Q), 512u);
}

TEST(DDmallocTest, ReallocNullActsAsMalloc) {
  DDmallocAllocator A(smallHeapConfig());
  void *P = A.reallocate(nullptr, 0, 48);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(A.usableSize(P), 48u);
}

TEST(DDmallocTest, MetadataColoringDependsOnProcessId) {
  DDmallocConfig C0 = smallHeapConfig();
  C0.ProcessId = 0;
  DDmallocConfig C1 = smallHeapConfig();
  C1.ProcessId = 1;
  DDmallocConfig C9 = smallHeapConfig();
  C9.ProcessId = 9;
  DDmallocAllocator A0(C0), A1(C1), A9(C9);
  EXPECT_EQ(A0.metadataOffset(), 0u);
  EXPECT_NE(A1.metadataOffset(), A9.metadataOffset());
  // Offsets stay 64-byte aligned and inside half a segment.
  EXPECT_EQ(A1.metadataOffset() % 64, 0u);
  EXPECT_LT(A1.metadataOffset(), C1.SegmentSize / 2);

  DDmallocConfig NoColor = smallHeapConfig();
  NoColor.ProcessId = 5;
  NoColor.MetadataColoring = false;
  DDmallocAllocator Plain(NoColor);
  EXPECT_EQ(Plain.metadataOffset(), 0u);
}

TEST(DDmallocTest, MemoryConsumptionCountsSegmentsAndMetadata) {
  DDmallocAllocator A(smallHeapConfig());
  uint64_t Baseline = A.memoryConsumption();
  EXPECT_EQ(Baseline, A.metadataBytes());
  A.allocate(64);
  EXPECT_EQ(A.memoryConsumption(), Baseline + A.config().SegmentSize);
  A.allocate(64); // same segment: no growth
  EXPECT_EQ(A.memoryConsumption(), Baseline + A.config().SegmentSize);
  A.allocate(300); // different class: one more segment
  EXPECT_EQ(A.memoryConsumption(), Baseline + 2 * A.config().SegmentSize);
}

TEST(DDmallocTest, ExhaustionReturnsNull) {
  DDmallocConfig Config;
  Config.HeapReserveBytes = 1 * 1024 * 1024;
  DDmallocAllocator A(Config);
  std::vector<void *> Objects;
  for (;;) {
    void *P = A.allocate(16 * 1024);
    if (!P)
      break;
    Objects.push_back(P);
  }
  EXPECT_GT(Objects.size(), 10u);
  // freeAll recovers the space.
  A.freeAll();
  EXPECT_NE(A.allocate(16 * 1024), nullptr);
}

TEST(DDmallocTest, StatsTrackCallsAndBytes) {
  DDmallocAllocator A(smallHeapConfig());
  void *P = A.allocate(100);
  void *Q = A.allocate(200);
  A.deallocate(P);
  A.reallocate(Q, 200, 400);
  A.freeAll();
  const AllocatorStats &S = A.stats();
  EXPECT_EQ(S.MallocCalls, 3u); // 2 + 1 from realloc's grow path
  EXPECT_EQ(S.FreeCalls, 2u);   // 1 + 1 from realloc's grow path
  EXPECT_EQ(S.ReallocCalls, 1u);
  EXPECT_EQ(S.FreeAllCalls, 1u);
  EXPECT_EQ(S.BytesRequested, 100u + 200u + 400u);
  EXPECT_EQ(S.UsableBytesLive, 0u);
}

TEST(DDmallocTest, SmallerSegmentSizeWorks) {
  DDmallocConfig Config;
  Config.SegmentSize = 8 * 1024;
  Config.HeapReserveBytes = 8ull * 1024 * 1024;
  DDmallocAllocator A(Config);
  Rng R(2);
  std::vector<std::pair<void *, size_t>> Live;
  for (int I = 0; I < 2000; ++I) {
    size_t Size = R.nextInRange(1, 6000);
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr);
    Live.push_back({P, Size});
    if (Live.size() > 100) {
      A.deallocate(Live.front().first);
      Live.erase(Live.begin());
    }
  }
  A.freeAll();
  EXPECT_EQ(A.segmentsInUse(), 0u);
}

TEST(DDmallocTest, RandomizedNoOverlapAndIntegrity) {
  DDmallocAllocator A(smallHeapConfig());
  Rng R(42);
  struct LiveObject {
    unsigned char *Ptr;
    size_t Size;
    unsigned char Pattern;
  };
  std::vector<LiveObject> Live;
  for (int Step = 0; Step < 20000; ++Step) {
    if (Live.empty() || R.nextBool(0.55)) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(3.5, 1.2));
      if (Size > 60000)
        Size = 60000;
      auto *P = static_cast<unsigned char *>(A.allocate(Size));
      ASSERT_NE(P, nullptr);
      auto Pattern = static_cast<unsigned char>(R.next());
      std::memset(P, Pattern, Size);
      Live.push_back({P, Size, Pattern});
    } else {
      size_t Index = R.nextBelow(Live.size());
      LiveObject Object = Live[Index];
      for (size_t I = 0; I < Object.Size; I += 97)
        ASSERT_EQ(Object.Ptr[I], Object.Pattern) << "corruption at step " << Step;
      A.deallocate(Object.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    }
  }
  // Everything still live must be intact.
  for (const LiveObject &Object : Live)
    for (size_t I = 0; I < Object.Size; I += 97)
      ASSERT_EQ(Object.Ptr[I], Object.Pattern);
}
