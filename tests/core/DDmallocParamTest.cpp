//===- tests/core/DDmallocParamTest.cpp - DDmalloc parameter sweeps -------===//
///
/// \file
/// Property tests of DDmalloc across its tuning space: segment sizes
/// (the paper's Section 3.2 parameter), process ids (metadata coloring),
/// and random operation mixes. Parameterized over (segment size, seed).
///
//===----------------------------------------------------------------------===//

#include "core/DDmalloc.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

using namespace ddm;

namespace {

class DDmallocParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {
protected:
  size_t segmentSize() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  DDmallocConfig config() const {
    DDmallocConfig Config;
    Config.SegmentSize = segmentSize();
    Config.HeapReserveBytes = 64ull * 1024 * 1024;
    return Config;
  }
};

} // namespace

TEST_P(DDmallocParamTest, SegmentAlignmentHoldsForLargeObjects) {
  DDmallocAllocator A(config());
  size_t Threshold = segmentSize() / 2;
  void *P = A.allocate(Threshold + 1);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % segmentSize(), 0u);
  EXPECT_EQ(A.usableSize(P), segmentSize());
}

TEST_P(DDmallocParamTest, ObjectsNeverOverlapUnderChurn) {
  DDmallocAllocator A(config());
  Rng R(seed());
  std::map<uintptr_t, size_t> Live;
  std::vector<void *> Order;
  size_t MaxSize = segmentSize(); // exercises both small and large paths
  for (int Step = 0; Step < 5000; ++Step) {
    if (Order.empty() || R.nextBool(0.6)) {
      size_t Size = 1 + R.nextBelow(MaxSize);
      void *P = A.allocate(Size);
      ASSERT_NE(P, nullptr);
      auto Start = reinterpret_cast<uintptr_t>(P);
      size_t Usable = A.usableSize(P);
      auto After = Live.lower_bound(Start);
      if (After != Live.end()) {
        ASSERT_LE(Start + Usable, After->first);
      }
      if (After != Live.begin()) {
        auto Before = std::prev(After);
        ASSERT_LE(Before->first + Before->second, Start);
      }
      Live.emplace(Start, Usable);
      Order.push_back(P);
    } else {
      size_t Index = R.nextBelow(Order.size());
      Live.erase(reinterpret_cast<uintptr_t>(Order[Index]));
      A.deallocate(Order[Index]);
      Order[Index] = Order.back();
      Order.pop_back();
    }
  }
}

TEST_P(DDmallocParamTest, FreeAllAlwaysRestoresDeterminism) {
  DDmallocAllocator A(config());
  Rng R(seed());
  // Random churn, then freeAll, then a fixed allocation script must land
  // on the same addresses as on a fresh heap.
  for (int I = 0; I < 2000; ++I) {
    void *P = A.allocate(1 + R.nextBelow(4096));
    if (R.nextBool(0.7))
      A.deallocate(P);
  }
  A.freeAll();
  std::vector<void *> AfterChurn;
  for (size_t Size : {16ul, 100ul, 1000ul, 5000ul})
    AfterChurn.push_back(A.allocate(Size));

  DDmallocAllocator Fresh(config());
  std::vector<void *> FromFresh;
  for (size_t Size : {16ul, 100ul, 1000ul, 5000ul})
    FromFresh.push_back(Fresh.allocate(Size));
  // The arenas map at different bases; the allocation pattern relative to
  // the first object must be identical.
  for (size_t I = 1; I < AfterChurn.size(); ++I) {
    auto DeltaA = reinterpret_cast<uintptr_t>(AfterChurn[I]) -
                  reinterpret_cast<uintptr_t>(AfterChurn[0]);
    auto DeltaB = reinterpret_cast<uintptr_t>(FromFresh[I]) -
                  reinterpret_cast<uintptr_t>(FromFresh[0]);
    EXPECT_EQ(DeltaA, DeltaB) << "allocation " << I;
  }
}

TEST_P(DDmallocParamTest, UsableSizeAlwaysCoversRequest) {
  DDmallocAllocator A(config());
  Rng R(seed() ^ 0x77);
  for (int I = 0; I < 2000; ++I) {
    // Up to one segment: exercises small classes plus single-segment
    // large objects (multi-segment ones never reuse freed space by
    // design, so an 80%-free loop would exhaust the test heap).
    size_t Size = 1 + R.nextBelow(segmentSize());
    void *P = A.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_GE(A.usableSize(P), Size);
    if (R.nextBool(0.8))
      A.deallocate(P);
  }
}

TEST_P(DDmallocParamTest, ConsumptionIsSegmentGranular) {
  DDmallocAllocator A(config());
  Rng R(seed());
  for (int I = 0; I < 1000; ++I)
    A.allocate(1 + R.nextBelow(1000));
  uint64_t Consumption = A.memoryConsumption();
  EXPECT_EQ((Consumption - A.metadataBytes()) % segmentSize(), 0u);
  EXPECT_EQ(A.segmentsInUse() * segmentSize() + A.metadataBytes(),
            Consumption);
}

TEST_P(DDmallocParamTest, SmallerSegmentsConsumeLessForSparseClasses) {
  // One object per class: consumption = classes-touched * segment size.
  DDmallocConfig Small = config();
  Small.SegmentSize = 8 * 1024;
  DDmallocConfig Large = config();
  Large.SegmentSize = 64 * 1024;
  DDmallocAllocator As(Small), Al(Large);
  for (size_t Size = 8; Size <= 512; Size += 8) {
    As.allocate(Size);
    Al.allocate(Size);
  }
  EXPECT_LT(As.memoryConsumption(), Al.memoryConsumption());
}

INSTANTIATE_TEST_SUITE_P(
    SegmentSweep, DDmallocParamTest,
    ::testing::Combine(::testing::Values(size_t(8192), size_t(16384),
                                         size_t(32768), size_t(65536)),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>> &Info) {
      return "seg" + std::to_string(std::get<0>(Info.param) / 1024) + "k_seed" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(DDmallocColoringTest, OffsetsCycleWithinHalfASegment) {
  for (uint32_t Pid = 0; Pid < 64; ++Pid) {
    DDmallocConfig Config;
    Config.ProcessId = Pid;
    Config.HeapReserveBytes = 16ull * 1024 * 1024;
    DDmallocAllocator A(Config);
    EXPECT_LT(A.metadataOffset(), Config.SegmentSize / 2);
    EXPECT_EQ(A.metadataOffset() % 64, 0u);
    // The allocator works regardless of the offset.
    void *P = A.allocate(64);
    ASSERT_NE(P, nullptr);
    A.deallocate(P);
    A.freeAll();
  }
}

TEST(DDmallocColoringTest, NeighbouringPidsLandInDifferentSets) {
  // Two adjacent process ids must not map their metadata to the same
  // 64-byte-line offset (that is the point of the coloring).
  DDmallocConfig C0, C1;
  C0.ProcessId = 0;
  C1.ProcessId = 1;
  C0.HeapReserveBytes = C1.HeapReserveBytes = 16ull * 1024 * 1024;
  DDmallocAllocator A0(C0), A1(C1);
  EXPECT_NE(A0.metadataOffset() / 64 % 128, A1.metadataOffset() / 64 % 128);
}
