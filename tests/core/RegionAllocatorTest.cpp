//===- tests/core/RegionAllocatorTest.cpp - Region allocator tests --------===//

#include "core/ObstackAllocator.h"
#include "core/RegionAllocator.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ddm;

namespace {

RegionConfig smallRegion() {
  RegionConfig Config;
  Config.ChunkBytes = 1 * 1024 * 1024;
  Config.MaxChunks = 3;
  return Config;
}

} // namespace

TEST(RegionAllocatorTest, BumpAllocationIsContiguous) {
  RegionAllocator A(smallRegion());
  auto *P1 = static_cast<std::byte *>(A.allocate(10)); // rounds to 16
  auto *P2 = static_cast<std::byte *>(A.allocate(8));
  auto *P3 = static_cast<std::byte *>(A.allocate(1));
  EXPECT_EQ(P2 - P1, 16);
  EXPECT_EQ(P3 - P2, 8);
}

TEST(RegionAllocatorTest, RoundsToMultipleOf8) {
  RegionAllocator A(smallRegion());
  auto *P1 = static_cast<std::byte *>(A.allocate(1));
  auto *P2 = static_cast<std::byte *>(A.allocate(1));
  EXPECT_EQ(P2 - P1, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 8, 0u);
}

TEST(RegionAllocatorTest, DeallocateDoesNotReuse) {
  RegionAllocator A(smallRegion());
  void *P1 = A.allocate(64);
  A.deallocate(P1);
  void *P2 = A.allocate(64);
  // No per-object free: the space is not reused.
  EXPECT_NE(P2, P1);
  EXPECT_FALSE(A.supportsPerObjectFree());
}

TEST(RegionAllocatorTest, ContentSurvivesDeallocate) {
  // Free reclaims nothing until freeAll, so the bytes stay intact — except
  // the first word, which free stamps with the double-free dead mark.
  RegionAllocator A(smallRegion());
  auto *P = static_cast<unsigned char *>(A.allocate(100));
  std::memset(P, 0x42, 100);
  A.deallocate(P);
  A.allocate(100);
  for (int I = 8; I < 100; ++I)
    EXPECT_EQ(P[I], 0x42);
}

TEST(RegionAllocatorTest, FreeAllResetsTheBump) {
  RegionAllocator A(smallRegion());
  void *P1 = A.allocate(100);
  A.allocate(200);
  A.freeAll();
  EXPECT_EQ(A.allocate(100), P1);
  EXPECT_EQ(A.memoryConsumption(), 104u); // 100 rounds to 104
}

TEST(RegionAllocatorTest, OverflowsIntoNextChunk) {
  RegionAllocator A(smallRegion());
  // Fill most of the first 1 MB chunk.
  A.allocate(1024 * 1024 - 64);
  EXPECT_EQ(A.numChunks(), 1u);
  void *P = A.allocate(128); // does not fit: new chunk
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(A.numChunks(), 2u);
  // freeAll keeps the chunks but rewinds to the first.
  A.freeAll();
  EXPECT_EQ(A.memoryConsumption(), 0u);
}

TEST(RegionAllocatorTest, ExhaustionReturnsNull) {
  RegionAllocator A(smallRegion());
  for (int I = 0; I < 3; ++I)
    ASSERT_NE(A.allocate(1024 * 1024 - 64), nullptr);
  EXPECT_EQ(A.allocate(1024 * 1024 - 64), nullptr);
  // An over-chunk-size request can never be served.
  EXPECT_EQ(A.allocate(2 * 1024 * 1024), nullptr);
}

TEST(RegionAllocatorTest, MemoryConsumptionIsTotalAllocated) {
  RegionAllocator A(smallRegion());
  A.allocate(100); // 104
  A.allocate(100); // 104
  void *P = A.allocate(50); // 56
  A.deallocate(P);          // does not shrink consumption
  EXPECT_EQ(A.memoryConsumption(), 104u + 104 + 56);
}

TEST(RegionAllocatorTest, ReallocAlwaysCopiesForward) {
  RegionAllocator A(smallRegion());
  auto *P = static_cast<unsigned char *>(A.allocate(32));
  std::memset(P, 0x99, 32);
  auto *Q = static_cast<unsigned char *>(A.reallocate(P, 32, 200));
  ASSERT_NE(Q, nullptr);
  EXPECT_NE(Q, P);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Q[I], 0x99);
  // Shrinking (within the rounded size) keeps the pointer.
  EXPECT_EQ(A.reallocate(Q, 200, 100), Q);
}

TEST(RegionAllocatorTest, StatsCountCalls) {
  RegionAllocator A(smallRegion());
  void *P = A.allocate(10);
  A.deallocate(P);
  A.freeAll();
  EXPECT_EQ(A.stats().MallocCalls, 1u);
  EXPECT_EQ(A.stats().FreeCalls, 1u);
  EXPECT_EQ(A.stats().FreeAllCalls, 1u);
}

TEST(ObstackAllocatorTest, BumpAndChunkGrowth) {
  ObstackConfig Config;
  Config.ChunkBytes = 4096;
  Config.HeapReserveBytes = 4 * 1024 * 1024;
  ObstackAllocator A(Config);
  EXPECT_EQ(A.numChunksUsed(), 1u);
  // ~4 KB chunks fill after a handful of 1 KB objects.
  for (int I = 0; I < 8; ++I)
    ASSERT_NE(A.allocate(1000), nullptr);
  EXPECT_GT(A.numChunksUsed(), 1u);
}

TEST(ObstackAllocatorTest, OversizedObjectGetsItsOwnChunk) {
  ObstackConfig Config;
  Config.ChunkBytes = 4096;
  Config.HeapReserveBytes = 4 * 1024 * 1024;
  ObstackAllocator A(Config);
  void *P = A.allocate(100000);
  ASSERT_NE(P, nullptr);
  auto *Q = static_cast<unsigned char *>(P);
  std::memset(Q, 0xEE, 100000);
  EXPECT_EQ(Q[99999], 0xEE);
}

TEST(ObstackAllocatorTest, FreeAllRewinds) {
  ObstackConfig Config;
  Config.ChunkBytes = 4096;
  Config.HeapReserveBytes = 4 * 1024 * 1024;
  ObstackAllocator A(Config);
  void *First = A.allocate(64);
  for (int I = 0; I < 100; ++I)
    A.allocate(512);
  A.freeAll();
  EXPECT_EQ(A.numChunksUsed(), 1u);
  EXPECT_EQ(A.allocate(64), First);
}

TEST(ObstackAllocatorTest, NoPerObjectFree) {
  ObstackAllocator A;
  EXPECT_FALSE(A.supportsPerObjectFree());
  void *P1 = A.allocate(64);
  A.deallocate(P1);
  EXPECT_NE(A.allocate(64), P1);
}
