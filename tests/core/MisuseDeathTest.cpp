//===- tests/core/MisuseDeathTest.cpp - Programmatic-error handling -------===//
///
/// \file
/// The library's error philosophy (LLVM-style): programmatic errors abort
/// loudly at the point of failure. These death tests pin down that
/// misusing the API actually trips the checks rather than corrupting
/// memory silently.
///
//===----------------------------------------------------------------------===//

#include "core/AdaptiveAllocator.h"
#include "core/AllocatorFactory.h"
#include "core/BoundaryTagHeap.h"
#include "core/DDmalloc.h"
#include "support/Error.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

DDmallocConfig smallConfig() {
  DDmallocConfig Config;
  Config.HeapReserveBytes = 8ull * 1024 * 1024;
  return Config;
}

} // namespace

TEST(MisuseDeathTest, FatalAborts) {
  EXPECT_DEATH(fatal("boom"), "ddmalloc fatal error: boom");
}

TEST(MisuseDeathTest, UnreachableAborts) {
  EXPECT_DEATH(unreachable("should not happen"),
               "unreachable: should not happen");
}

TEST(MisuseDeathTest, FreeAllOnMallocOnlyAllocatorsAborts) {
  // The paper's Ruby-study allocators support only the malloc-free
  // interface; calling freeAll on them is a programming error.
  for (AllocatorKind Kind : {AllocatorKind::Glibc, AllocatorKind::TCMalloc,
                             AllocatorKind::Hoard, AllocatorKind::Slab}) {
    auto A = createAllocator(Kind);
    ASSERT_FALSE(A->supportsBulkFree());
    EXPECT_DEATH(A->freeAll(), "no bulk free") << allocatorKindName(Kind);
  }
}

TEST(MisuseDeathTest, DDmallocForeignPointerFreeAsserts) {
  DDmallocAllocator A(smallConfig());
  int Local = 0;
  EXPECT_DEATH(A.deallocate(&Local), "not from this heap");
}

TEST(MisuseDeathTest, DDmallocFreeIntoUnusedSegmentAsserts) {
  DDmallocAllocator A(smallConfig());
  // An address inside the heap but in a never-allocated segment.
  void *P = A.allocate(64);
  auto Addr = reinterpret_cast<uintptr_t>(P) + 4 * A.config().SegmentSize;
  EXPECT_DEATH(A.deallocate(reinterpret_cast<void *>(Addr)),
               "unused segment");
}

TEST(MisuseDeathTest, BoundaryTagDoubleFreeAsserts) {
  BoundaryTagHeap H(1 << 20);
  void *P = H.malloc(100);
  void *Guard = H.malloc(100); // keep the chunk away from the wilderness
  H.free(P);
  EXPECT_DEATH(H.free(P), "double free");
  (void)Guard;
}

TEST(MisuseDeathTest, BoundaryTagNullFreeAsserts) {
  BoundaryTagHeap H(1 << 20);
  EXPECT_DEATH(H.free(nullptr), "bad pointer");
}

// The adaptive wrapper tracks every object it hands out; a pointer it
// never saw would silently leak (free) or corrupt the live table
// (realloc) if it only asserted, so these are fatal in Release too.
TEST(MisuseDeathTest, AdaptiveForeignPointerFreeAborts) {
  AdaptiveAllocator A;
  int Local = 0;
  EXPECT_DEATH(A.deallocate(&Local), "never allocated here");
}

TEST(MisuseDeathTest, AdaptiveDoubleFreeAborts) {
  AdaptiveAllocator A;
  void *P = A.allocate(64);
  ASSERT_NE(P, nullptr);
  A.deallocate(P);
  EXPECT_DEATH(A.deallocate(P), "never allocated here");
}

TEST(MisuseDeathTest, AdaptiveForeignPointerReallocAborts) {
  AdaptiveAllocator A;
  int Local = 0;
  EXPECT_DEATH(A.reallocate(&Local, sizeof(Local), 128),
               "never allocated here");
}

//===----------------------------------------------------------------------===//
// Zoo-wide misuse detection: every allocator kind, hardened and
// unhardened, must detect a double free and a foreign-pointer free with a
// loud death rather than silent corruption (DESIGN.md section 14).
//===----------------------------------------------------------------------===//

namespace {

/// (kind, hardened?) across the whole zoo.
class ZooMisuseDeathTest
    : public testing::TestWithParam<std::tuple<AllocatorKind, bool>> {
protected:
  std::unique_ptr<TxAllocator> makeAllocator() const {
    AllocatorOptions Options;
    Options.Hardening.Enabled = std::get<1>(GetParam());
    return createAllocator(std::get<0>(GetParam()), Options);
  }
};

/// Every double-free diagnostic in the tree names the duplicate free;
/// the adaptive wrapper reports the pointer as unknown instead.
constexpr const char *DoubleFreePattern =
    "double free|never allocated here";

/// Foreign-pointer diagnostics differ per allocator; the hardened wrapper
/// classifies the pointer's (absent) header as clobbered.
constexpr const char *ForeignFreePattern =
    "not from this heap|bad pointer|never allocated here|foreign pointer";

std::string zooParamName(
    const testing::TestParamInfo<std::tuple<AllocatorKind, bool>> &Info) {
  return std::string(allocatorKindName(std::get<0>(Info.param))) +
         (std::get<1>(Info.param) ? "_hardened" : "_plain");
}

} // namespace

TEST_P(ZooMisuseDeathTest, DoubleFreeDetected) {
  auto A = makeAllocator();
  void *P = A->allocate(64);
  ASSERT_NE(P, nullptr);
  // Keep the chunk away from the boundary-tag wilderness: a lone freed
  // chunk would coalesce into it and lose its header state.
  void *Guard = A->allocate(64);
  ASSERT_NE(Guard, nullptr);
  A->deallocate(P);
  EXPECT_DEATH(A->deallocate(P), DoubleFreePattern);
}

TEST_P(ZooMisuseDeathTest, ForeignPointerFreeDetected) {
  auto A = makeAllocator();
  // Keep the heap non-empty so pointer-validation paths that consult live
  // metadata have something to look at.
  void *P = A->allocate(64);
  ASSERT_NE(P, nullptr);
  alignas(8) unsigned char Local[64] = {};
  EXPECT_DEATH(A->deallocate(Local + 8), ForeignFreePattern);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ZooMisuseDeathTest,
    testing::Combine(testing::ValuesIn(allAllocatorKinds()),
                     testing::Bool()),
    zooParamName);
