//===- tests/core/MisuseDeathTest.cpp - Programmatic-error handling -------===//
///
/// \file
/// The library's error philosophy (LLVM-style): programmatic errors abort
/// loudly at the point of failure. These death tests pin down that
/// misusing the API actually trips the checks rather than corrupting
/// memory silently.
///
//===----------------------------------------------------------------------===//

#include "core/AdaptiveAllocator.h"
#include "core/AllocatorFactory.h"
#include "core/BoundaryTagHeap.h"
#include "core/DDmalloc.h"
#include "support/Error.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

DDmallocConfig smallConfig() {
  DDmallocConfig Config;
  Config.HeapReserveBytes = 8ull * 1024 * 1024;
  return Config;
}

} // namespace

TEST(MisuseDeathTest, FatalAborts) {
  EXPECT_DEATH(fatal("boom"), "ddmalloc fatal error: boom");
}

TEST(MisuseDeathTest, UnreachableAborts) {
  EXPECT_DEATH(unreachable("should not happen"),
               "unreachable: should not happen");
}

TEST(MisuseDeathTest, FreeAllOnMallocOnlyAllocatorsAborts) {
  // The paper's Ruby-study allocators support only the malloc-free
  // interface; calling freeAll on them is a programming error.
  for (AllocatorKind Kind : {AllocatorKind::Glibc, AllocatorKind::TCMalloc,
                             AllocatorKind::Hoard, AllocatorKind::Slab}) {
    auto A = createAllocator(Kind);
    ASSERT_FALSE(A->supportsBulkFree());
    EXPECT_DEATH(A->freeAll(), "no bulk free") << allocatorKindName(Kind);
  }
}

TEST(MisuseDeathTest, DDmallocForeignPointerFreeAsserts) {
  DDmallocAllocator A(smallConfig());
  int Local = 0;
  EXPECT_DEATH(A.deallocate(&Local), "not from this heap");
}

TEST(MisuseDeathTest, DDmallocFreeIntoUnusedSegmentAsserts) {
  DDmallocAllocator A(smallConfig());
  // An address inside the heap but in a never-allocated segment.
  void *P = A.allocate(64);
  auto Addr = reinterpret_cast<uintptr_t>(P) + 4 * A.config().SegmentSize;
  EXPECT_DEATH(A.deallocate(reinterpret_cast<void *>(Addr)),
               "unused segment");
}

TEST(MisuseDeathTest, BoundaryTagDoubleFreeAsserts) {
  BoundaryTagHeap H(1 << 20);
  void *P = H.malloc(100);
  void *Guard = H.malloc(100); // keep the chunk away from the wilderness
  H.free(P);
  EXPECT_DEATH(H.free(P), "double free");
  (void)Guard;
}

TEST(MisuseDeathTest, BoundaryTagNullFreeAsserts) {
  BoundaryTagHeap H(1 << 20);
  EXPECT_DEATH(H.free(nullptr), "bad pointer");
}

// The adaptive wrapper tracks every object it hands out; a pointer it
// never saw would silently leak (free) or corrupt the live table
// (realloc) if it only asserted, so these are fatal in Release too.
TEST(MisuseDeathTest, AdaptiveForeignPointerFreeAborts) {
  AdaptiveAllocator A;
  int Local = 0;
  EXPECT_DEATH(A.deallocate(&Local), "never allocated here");
}

TEST(MisuseDeathTest, AdaptiveDoubleFreeAborts) {
  AdaptiveAllocator A;
  void *P = A.allocate(64);
  ASSERT_NE(P, nullptr);
  A.deallocate(P);
  EXPECT_DEATH(A.deallocate(P), "never allocated here");
}

TEST(MisuseDeathTest, AdaptiveForeignPointerReallocAborts) {
  AdaptiveAllocator A;
  int Local = 0;
  EXPECT_DEATH(A.reallocate(&Local, sizeof(Local), 128),
               "never allocated here");
}
