//===- tests/core/BoundaryTagHeapTest.cpp - Coalescing heap tests ---------===//

#include "core/BoundaryTagHeap.h"
#include "core/ZendDefaultAllocator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace ddm;

namespace {
constexpr size_t TestArena = 32ull * 1024 * 1024;
} // namespace

TEST(BoundaryTagHeapTest, BasicAllocateAndVerify) {
  BoundaryTagHeap H(TestArena);
  void *P = H.malloc(100);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(H.usableSize(P), 100u);
  EXPECT_TRUE(H.verify());
  H.free(P);
  EXPECT_TRUE(H.verify());
}

TEST(BoundaryTagHeapTest, FreeAdjacentToWildernessRewindsTop) {
  BoundaryTagHeap H(TestArena);
  void *P = H.malloc(100);
  uint64_t Footprint = H.footprintBytes();
  H.free(P);
  // Freeing the last chunk merges it into the wilderness: no free chunks.
  EXPECT_EQ(H.freeChunkCount(), 0u);
  void *Q = H.malloc(100);
  EXPECT_EQ(Q, P);
  EXPECT_EQ(H.footprintBytes(), Footprint);
}

TEST(BoundaryTagHeapTest, CoalesceWithPreviousChunk) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(100);
  void *B = H.malloc(100);
  void *Guard = H.malloc(100); // keeps B away from the wilderness
  H.free(A);
  EXPECT_EQ(H.freeChunkCount(), 1u);
  H.free(B); // merges backward with A's chunk
  EXPECT_EQ(H.freeChunkCount(), 1u);
  EXPECT_EQ(H.defragActivity().Coalesces, 1u);
  EXPECT_TRUE(H.verify());
  H.free(Guard);
}

TEST(BoundaryTagHeapTest, CoalesceWithNextChunk) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(100);
  void *B = H.malloc(100);
  void *Guard = H.malloc(100);
  H.free(B);
  EXPECT_EQ(H.freeChunkCount(), 1u);
  H.free(A); // merges forward with B's chunk
  EXPECT_EQ(H.freeChunkCount(), 1u);
  EXPECT_TRUE(H.verify());
  H.free(Guard);
}

TEST(BoundaryTagHeapTest, CoalesceBothSides) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(100);
  void *B = H.malloc(100);
  void *C = H.malloc(100);
  void *Guard = H.malloc(100);
  H.free(A);
  H.free(C);
  EXPECT_EQ(H.freeChunkCount(), 2u);
  H.free(B); // merges with both neighbours
  EXPECT_EQ(H.freeChunkCount(), 1u);
  EXPECT_TRUE(H.verify());
  // The merged chunk serves a request as big as all three.
  void *Big = H.malloc(3 * 100);
  EXPECT_EQ(Big, A);
  H.free(Guard);
  EXPECT_TRUE(H.verify());
}

TEST(BoundaryTagHeapTest, SplitLeavesRemainderInBins) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(1000);
  void *Guard = H.malloc(16);
  H.free(A);
  uint64_t SplitsBefore = H.defragActivity().Splits;
  void *B = H.malloc(100); // takes A's chunk and splits it
  EXPECT_EQ(B, A);
  EXPECT_EQ(H.defragActivity().Splits, SplitsBefore + 1);
  EXPECT_EQ(H.freeChunkCount(), 1u); // the remainder
  EXPECT_TRUE(H.verify());
  (void)Guard;
}

TEST(BoundaryTagHeapTest, BinSearchFindsLargerChunk) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(5000);
  void *Guard = H.malloc(16);
  H.free(A);
  // A smaller request is served from the freed chunk, not the wilderness.
  uint64_t Footprint = H.footprintBytes();
  void *B = H.malloc(200);
  EXPECT_EQ(B, A);
  EXPECT_EQ(H.footprintBytes(), Footprint);
  EXPECT_GT(H.defragActivity().BinProbes, 0u);
  (void)Guard;
}

TEST(BoundaryTagHeapTest, ReallocGrowsIntoWilderness) {
  BoundaryTagHeap H(TestArena);
  auto *P = static_cast<unsigned char *>(H.malloc(100));
  std::memset(P, 0x3C, 100);
  auto *Q = static_cast<unsigned char *>(H.realloc(P, 5000));
  EXPECT_EQ(Q, P); // last chunk extends in place
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Q[I], 0x3C);
  EXPECT_TRUE(H.verify());
}

TEST(BoundaryTagHeapTest, ReallocGrowsIntoFreeNeighbour) {
  BoundaryTagHeap H(TestArena);
  auto *A = static_cast<unsigned char *>(H.malloc(100));
  void *B = H.malloc(1000);
  void *Guard = H.malloc(16);
  H.free(B);
  std::memset(A, 0x77, 100);
  uint64_t CoalescesBefore = H.defragActivity().Coalesces;
  auto *Grown = static_cast<unsigned char *>(H.realloc(A, 600));
  EXPECT_EQ(Grown, A); // absorbed the free neighbour
  EXPECT_GT(H.defragActivity().Coalesces, CoalescesBefore);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Grown[I], 0x77);
  EXPECT_TRUE(H.verify());
  (void)Guard;
}

TEST(BoundaryTagHeapTest, ReallocShrinkReturnsTail) {
  BoundaryTagHeap H(TestArena);
  void *A = H.malloc(4096);
  void *Guard = H.malloc(16);
  void *Shrunk = H.realloc(A, 64);
  EXPECT_EQ(Shrunk, A);
  EXPECT_GE(H.freeChunkCount(), 1u); // the tail went back to the bins
  EXPECT_TRUE(H.verify());
  (void)Guard;
}

TEST(BoundaryTagHeapTest, ReallocMovesWhenStuck) {
  BoundaryTagHeap H(TestArena);
  auto *A = static_cast<unsigned char *>(H.malloc(100));
  void *Guard = H.malloc(100); // blocks in-place growth
  std::memset(A, 0x11, 100);
  auto *Moved = static_cast<unsigned char *>(H.realloc(A, 5000));
  ASSERT_NE(Moved, nullptr);
  EXPECT_NE(Moved, A);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Moved[I], 0x11);
  EXPECT_TRUE(H.verify());
  (void)Guard;
}

TEST(BoundaryTagHeapTest, ResetClearsEverything) {
  BoundaryTagHeap H(TestArena);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 100; ++I)
    Ptrs.push_back(H.malloc(64));
  for (int I = 0; I < 100; I += 2)
    H.free(Ptrs[I]);
  H.reset();
  EXPECT_EQ(H.footprintBytes(), 0u);
  EXPECT_EQ(H.freeChunkCount(), 0u);
  EXPECT_TRUE(H.verify());
  // Allocation starts from the arena base again.
  EXPECT_EQ(H.malloc(64), Ptrs[0]);
}

TEST(BoundaryTagHeapTest, ExhaustionReturnsNull) {
  BoundaryTagHeap H(1 * 1024 * 1024);
  std::vector<void *> Ptrs;
  for (;;) {
    void *P = H.malloc(64 * 1024);
    if (!P)
      break;
    Ptrs.push_back(P);
  }
  EXPECT_GT(Ptrs.size(), 10u);
  EXPECT_TRUE(H.verify());
  // Freeing one makes the next malloc succeed again.
  H.free(Ptrs.back());
  EXPECT_NE(H.malloc(64 * 1024), nullptr);
}

TEST(BoundaryTagHeapTest, RandomizedOperationsKeepHeapConsistent) {
  BoundaryTagHeap H(TestArena);
  Rng R(7);
  struct LiveObject {
    unsigned char *Ptr;
    size_t Size;
    unsigned char Pattern;
  };
  std::vector<LiveObject> Live;
  for (int Step = 0; Step < 8000; ++Step) {
    double Action = R.nextDouble();
    if (Live.empty() || Action < 0.5) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(4.0, 1.5));
      if (Size > 100000)
        Size = 100000;
      auto *P = static_cast<unsigned char *>(H.malloc(Size));
      ASSERT_NE(P, nullptr);
      auto Pattern = static_cast<unsigned char>(R.next());
      std::memset(P, Pattern, Size);
      Live.push_back({P, Size, Pattern});
    } else if (Action < 0.85) {
      size_t Index = R.nextBelow(Live.size());
      LiveObject Object = Live[Index];
      for (size_t I = 0; I < Object.Size; I += 61)
        ASSERT_EQ(Object.Ptr[I], Object.Pattern);
      H.free(Object.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    } else {
      size_t Index = R.nextBelow(Live.size());
      LiveObject &Object = Live[Index];
      size_t NewSize = 1 + static_cast<size_t>(R.nextLogNormal(4.0, 1.5));
      if (NewSize > 100000)
        NewSize = 100000;
      auto *P = static_cast<unsigned char *>(H.realloc(Object.Ptr, NewSize));
      ASSERT_NE(P, nullptr);
      size_t Preserved = Object.Size < NewSize ? Object.Size : NewSize;
      for (size_t I = 0; I < Preserved; I += 61)
        ASSERT_EQ(P[I], Object.Pattern);
      Object.Ptr = P;
      Object.Size = NewSize;
      std::memset(P, Object.Pattern, NewSize);
    }
    if (Step % 500 == 0) {
      ASSERT_TRUE(H.verify()) << "heap corrupt at step " << Step;
    }
  }
  ASSERT_TRUE(H.verify());
  for (const LiveObject &Object : Live)
    H.free(Object.Ptr);
  ASSERT_TRUE(H.verify());
}

TEST(ZendDefaultAllocatorTest, BulkFreeDiscardsTheHeap) {
  ZendDefaultAllocator A;
  std::vector<void *> FirstRound;
  for (int I = 0; I < 100; ++I)
    FirstRound.push_back(A.allocate(64));
  A.freeAll();
  EXPECT_EQ(A.stats().UsableBytesLive, 0u);
  // Same addresses again: the heap was reset wholesale.
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.allocate(64), FirstRound[I]);
  EXPECT_TRUE(A.verifyHeap());
}

TEST(ZendDefaultAllocatorTest, DefragActivityAccumulates) {
  ZendDefaultAllocator A;
  void *P1 = A.allocate(100);
  void *P2 = A.allocate(100);
  void *Guard = A.allocate(100);
  A.deallocate(P1);
  A.deallocate(P2);
  EXPECT_GT(A.defragActivity().Coalesces, 0u);
  void *Small = A.allocate(32); // split of the merged chunk
  EXPECT_GT(A.defragActivity().Splits, 0u);
  (void)Guard;
  (void)Small;
}

TEST(ZendDefaultAllocatorTest, HeadersMakeObjectsFartherApart) {
  // The paper attributes part of the default allocator's cache pressure to
  // per-object headers; two back-to-back allocations are > size apart.
  ZendDefaultAllocator A;
  auto *P1 = static_cast<std::byte *>(A.allocate(64));
  auto *P2 = static_cast<std::byte *>(A.allocate(64));
  EXPECT_GE(P2 - P1, 64 + 8);
}
