//===- tests/core/SegmentPoolTest.cpp - Sharded segment pool tests -------===//

#include "core/SegmentPool.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

using namespace ddm;

namespace {

SharedSegmentPool::Config smallConfig(unsigned Stripes = 4) {
  SharedSegmentPool::Config C;
  C.SegmentSize = 32 * 1024;
  C.ReserveBytes = 256 * C.SegmentSize; // 256 segments.
  C.Stripes = Stripes;
  return C;
}

TEST(SegmentPoolTest, GeometryMatchesConfig) {
  SharedSegmentPool Pool(smallConfig());
  EXPECT_EQ(Pool.segmentSize(), 32u * 1024);
  EXPECT_EQ(Pool.numSegments(), 256u);
  EXPECT_EQ(Pool.stripes(), 4u);
  EXPECT_NE(Pool.base(), nullptr);
  EXPECT_EQ(Pool.segmentAt(3), Pool.base() + 3 * Pool.segmentSize());
  EXPECT_EQ(Pool.segmentsOutstanding(), 0u);
}

TEST(SegmentPoolTest, AcquireReleaseReuse) {
  SharedSegmentPool Pool(smallConfig());
  uint32_t Batch[8];
  ASSERT_EQ(Pool.acquireSegments(0, Batch, 8), 8u);
  EXPECT_EQ(Pool.segmentsOutstanding(), 8u);

  Pool.releaseSegments(0, Batch, 8);
  EXPECT_EQ(Pool.segmentsOutstanding(), 0u);

  // The stripe serves released segments back before touching the frontier.
  uint64_t FrontierBefore = Pool.frontierSegments();
  uint32_t Again[8];
  ASSERT_EQ(Pool.acquireSegments(0, Again, 8), 8u);
  EXPECT_EQ(Pool.frontierSegments(), FrontierBefore);
  std::set<uint32_t> First(Batch, Batch + 8), Second(Again, Again + 8);
  EXPECT_EQ(First, Second);
}

TEST(SegmentPoolTest, AcquiredSegmentsAreUnique) {
  SharedSegmentPool Pool(smallConfig());
  std::set<uint32_t> Seen;
  uint32_t Batch[16];
  for (unsigned Shard = 0; Shard < 4; ++Shard) {
    size_t Got = Pool.acquireSegments(Shard, Batch, 16);
    ASSERT_EQ(Got, 16u);
    for (size_t I = 0; I < Got; ++I) {
      EXPECT_LT(Batch[I], Pool.numSegments());
      EXPECT_TRUE(Seen.insert(Batch[I]).second)
          << "segment " << Batch[I] << " handed out twice";
    }
  }
}

TEST(SegmentPoolTest, ExhaustionReturnsShortCount) {
  SharedSegmentPool::Config C = smallConfig(1);
  C.ReserveBytes = 8 * C.SegmentSize;
  SharedSegmentPool Pool(C);
  std::vector<uint32_t> All(16);
  size_t Got = Pool.acquireSegments(0, All.data(), 16);
  EXPECT_EQ(Got, 8u);
  EXPECT_EQ(Pool.acquireSegments(0, All.data(), 1), 0u);
  Pool.releaseSegments(0, All.data(), Got);
  EXPECT_EQ(Pool.acquireSegments(0, All.data(), 1), 1u);
}

TEST(SegmentPoolTest, StealsFromOtherStripesUnderPressure) {
  SharedSegmentPool::Config C = smallConfig(2);
  C.ReserveBytes = 8 * C.SegmentSize;
  SharedSegmentPool Pool(C);
  uint32_t Batch[8];
  ASSERT_EQ(Pool.acquireSegments(0, Batch, 8), 8u);
  // Park everything in stripe 1; stripe 0 must steal it back.
  Pool.releaseSegments(1, Batch, 8);
  EXPECT_EQ(Pool.acquireSegments(0, Batch, 8), 8u);
  EXPECT_GT(Pool.stripeMisses(), 0u);
}

TEST(SegmentPoolTest, RunAcquireSplitAndCoalesce) {
  SharedSegmentPool Pool(smallConfig());
  uint32_t Run = Pool.acquireRun(6);
  ASSERT_NE(Run, UINT32_MAX);
  EXPECT_EQ(Pool.segmentsOutstanding(), 6u);

  // Release, re-acquire a smaller run: first-fit splits the freed run.
  Pool.releaseRun(Run, 6);
  EXPECT_EQ(Pool.segmentsOutstanding(), 0u);
  uint32_t Small = Pool.acquireRun(2);
  ASSERT_NE(Small, UINT32_MAX);
  EXPECT_EQ(Small, Run);

  // Releasing the small run must coalesce with the remainder: a full-size
  // re-acquire succeeds at the same base.
  Pool.releaseRun(Small, 2);
  uint32_t Whole = Pool.acquireRun(6);
  EXPECT_EQ(Whole, Run);
  Pool.releaseRun(Whole, 6);
}

TEST(SegmentPoolTest, SegmentAcquireFaultSiteFires) {
  SharedSegmentPool Pool(smallConfig());
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,segment_acquire:every=1", Plan, Error))
      << Error;
  FaultInjector::instance().arm(Plan);
  uint32_t Batch[4];
  EXPECT_EQ(Pool.acquireSegments(0, Batch, 4), 0u);
  EXPECT_EQ(Pool.acquireRun(2), UINT32_MAX);
  FaultInjector::instance().disarm();
  EXPECT_EQ(Pool.acquireSegments(0, Batch, 4), 4u);
  Pool.releaseSegments(0, Batch, 4);
}

TEST(SegmentPoolTest, TryCreateReportsReservationFailure) {
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=1,arena_map:every=1", Plan, Error));
  FaultInjector::instance().arm(Plan);
  std::string CreateError;
  EXPECT_EQ(SharedSegmentPool::tryCreate(smallConfig(), &CreateError),
            nullptr);
  EXPECT_FALSE(CreateError.empty());
  FaultInjector::instance().disarm();
}

TEST(SegmentPoolTest, StatsSnapshotTracksEveryCounter) {
  SharedSegmentPool Pool(smallConfig(2));
  SegmentPoolStats Fresh = Pool.stats();
  EXPECT_EQ(Fresh.Outstanding, 0u);
  EXPECT_EQ(Fresh.FrontierSegments, 0u);
  EXPECT_EQ(Fresh.StripeMisses, 0u);
  EXPECT_EQ(Fresh.StripeSteals, 0u);
  EXPECT_EQ(Fresh.RunsSplit, 0u);
  EXPECT_EQ(Fresh.RunsCoalesced, 0u);

  uint32_t Batch[8];
  ASSERT_EQ(Pool.acquireSegments(0, Batch, 8), 8u);
  SegmentPoolStats Held = Pool.stats();
  EXPECT_EQ(Held.Outstanding, 8u);
  EXPECT_EQ(Held.FrontierSegments, 8u);

  // A freed run split by a smaller request, then made whole again.
  uint32_t Run = Pool.acquireRun(6);
  ASSERT_NE(Run, UINT32_MAX);
  Pool.releaseRun(Run, 6);
  uint32_t Small = Pool.acquireRun(2);
  ASSERT_NE(Small, UINT32_MAX);
  EXPECT_EQ(Pool.stats().RunsSplit, 1u);
  Pool.releaseRun(Small, 2);
  EXPECT_GE(Pool.stats().RunsCoalesced, 1u);

  Pool.releaseSegments(0, Batch, 8);
  EXPECT_EQ(Pool.stats().Outstanding, 0u);
  EXPECT_EQ(Pool.stats().StripeMisses, Pool.stripeMisses());
}

// Regression: a refill that the frontier can only partially satisfy must
// fall through to stealing from other stripes instead of returning the
// short count while siblings sit on free segments.
TEST(SegmentPoolTest, PartialFrontierFillStillStealsFromSiblings) {
  SharedSegmentPool::Config C = smallConfig(2);
  C.ReserveBytes = 8 * C.SegmentSize; // 8 segments total.
  SharedSegmentPool Pool(C);

  // Stripe 1 takes half the pool through the frontier and parks it on its
  // own free list; the frontier keeps the other half.
  uint32_t Parked[4];
  ASSERT_EQ(Pool.acquireSegments(1, Parked, 4), 4u);
  Pool.releaseSegments(1, Parked, 4);

  // Stripe 0 asks for everything: 4 from the frontier, 4 stolen.
  uint32_t Batch[8];
  EXPECT_EQ(Pool.acquireSegments(0, Batch, 8), 8u);
  SegmentPoolStats S = Pool.stats();
  EXPECT_EQ(S.Outstanding, 8u);
  EXPECT_GE(S.StripeSteals, 4u);
  Pool.releaseSegments(0, Batch, 8);
}

// Concurrent uniqueness: hammer acquire/release from one thread per
// stripe and check no segment is ever handed to two owners at once.
TEST(SegmentPoolTest, ConcurrentAcquireNeverDuplicates) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Rounds = 400;
  SharedSegmentPool Pool(smallConfig(Threads));

  std::vector<std::vector<uint32_t>> Held(Threads);
  std::atomic<bool> Duplicated{false};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      uint32_t Batch[8];
      for (unsigned R = 0; R < Rounds; ++R) {
        size_t Got = Pool.acquireSegments(T, Batch, 1 + R % 8);
        for (size_t I = 0; I < Got; ++I) {
          // Claim each segment's first word; a concurrent duplicate owner
          // would collide on the stamp.
          auto *Stamp = reinterpret_cast<std::atomic<uint32_t> *>(
              Pool.segmentAt(Batch[I]));
          uint32_t Expected = 0;
          if (!Stamp->compare_exchange_strong(Expected, T + 1))
            Duplicated = true;
          Held[T].push_back(Batch[I]);
        }
        if (Held[T].size() > 16 || R + 1 == Rounds) {
          for (uint32_t Seg : Held[T])
            reinterpret_cast<std::atomic<uint32_t> *>(Pool.segmentAt(Seg))
                ->store(0);
          Pool.releaseSegments(T, Held[T].data(), Held[T].size());
          Held[T].clear();
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_FALSE(Duplicated.load());
  EXPECT_EQ(Pool.segmentsOutstanding(), 0u);
}

} // namespace
