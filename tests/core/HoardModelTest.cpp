//===- tests/core/HoardModelTest.cpp - Hoard model tests ------------------===//

#include "core/HoardModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace ddm;

namespace {

HoardConfig smallConfig() {
  HoardConfig Config;
  Config.HeapReserveBytes = 64ull * 1024 * 1024;
  return Config;
}

/// Objects a 64 KB superblock can hold after its 64-byte header pad.
size_t capacityFor(size_t ClassSize) {
  return (HoardModelAllocator::SuperblockBytes - 64) / ClassSize;
}

} // namespace

TEST(HoardModelTest, ObjectsComeFromOneSuperblock) {
  HoardModelAllocator A(smallConfig());
  auto *P1 = static_cast<std::byte *>(A.allocate(64));
  auto *P2 = static_cast<std::byte *>(A.allocate(64));
  EXPECT_EQ(P2 - P1, 64);
  // Both live in the same superblock.
  auto Sb = HoardModelAllocator::SuperblockBytes;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) / Sb,
            reinterpret_cast<uintptr_t>(P2) / Sb);
}

TEST(HoardModelTest, FreedObjectReusedLifo) {
  HoardModelAllocator A(smallConfig());
  void *P = A.allocate(64);
  A.allocate(64);
  A.deallocate(P);
  EXPECT_EQ(A.allocate(64), P);
}

TEST(HoardModelTest, FullSuperblockLeavesAvailableList) {
  HoardModelAllocator A(smallConfig());
  size_t Capacity = capacityFor(64);
  std::vector<void *> Ptrs;
  for (size_t I = 0; I < Capacity; ++I)
    Ptrs.push_back(A.allocate(64));
  EXPECT_EQ(A.superblocksInUse(), 1u);
  // The next allocation needs a second superblock.
  void *Extra = A.allocate(64);
  ASSERT_NE(Extra, nullptr);
  EXPECT_EQ(A.superblocksInUse(), 2u);
  // Freeing into the full superblock puts it back in rotation: the free
  // slot is reused before any third superblock appears.
  A.deallocate(Ptrs[0]);
  std::vector<void *> More;
  for (size_t I = 0; I + 1 < capacityFor(64); ++I)
    More.push_back(A.allocate(64));
  EXPECT_EQ(A.superblocksInUse(), 2u);
}

TEST(HoardModelTest, EmptySuperblockReturnsToGlobalPool) {
  HoardModelAllocator A(smallConfig());
  std::vector<void *> Ptrs;
  for (int I = 0; I < 10; ++I)
    Ptrs.push_back(A.allocate(64));
  EXPECT_EQ(A.emptyPoolSize(), 0u);
  for (void *P : Ptrs)
    A.deallocate(P);
  EXPECT_EQ(A.emptyPoolSize(), 1u);
  // The pooled superblock is re-purposed for a different size class.
  void *Q = A.allocate(500);
  EXPECT_EQ(A.emptyPoolSize(), 0u);
  EXPECT_EQ(A.superblocksInUse(), 1u); // no new superblock was carved
  ASSERT_NE(Q, nullptr);
}

TEST(HoardModelTest, LargeObjectsBypassSuperblocks) {
  HoardModelAllocator A(smallConfig());
  void *P = A.allocate(200 * 1024);
  ASSERT_NE(P, nullptr);
  auto Sb = HoardModelAllocator::SuperblockBytes;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Sb, 0u);
  EXPECT_EQ(A.usableSize(P), 4 * Sb); // 256 KB
  std::memset(P, 0xAD, 200 * 1024);
  A.deallocate(P);
  // Freed large runs are reused.
  EXPECT_EQ(A.allocate(200 * 1024), P);
}

TEST(HoardModelTest, UsableSizeFromSuperblockHeader) {
  HoardModelAllocator A(smallConfig());
  void *P = A.allocate(200);
  EXPECT_EQ(A.usableSize(P), 224u);
}

TEST(HoardModelTest, ReallocPreservesContent) {
  HoardModelAllocator A(smallConfig());
  auto *P = static_cast<unsigned char *>(A.allocate(48));
  std::memset(P, 0x66, 48);
  auto *Q = static_cast<unsigned char *>(A.reallocate(P, 48, 2000));
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 48; ++I)
    EXPECT_EQ(Q[I], 0x66);
}

TEST(HoardModelTest, NoBulkFree) {
  HoardModelAllocator A(smallConfig());
  EXPECT_FALSE(A.supportsBulkFree());
  EXPECT_TRUE(A.supportsPerObjectFree());
}

TEST(HoardModelTest, RandomizedIntegrity) {
  HoardModelAllocator A(smallConfig());
  Rng R(13);
  struct LiveObject {
    unsigned char *Ptr;
    size_t Size;
    unsigned char Pattern;
  };
  std::vector<LiveObject> Live;
  for (int Step = 0; Step < 10000; ++Step) {
    if (Live.empty() || R.nextBool(0.52)) {
      size_t Size = 1 + static_cast<size_t>(R.nextLogNormal(3.5, 1.3));
      if (Size > 50000)
        Size = 50000;
      auto *P = static_cast<unsigned char *>(A.allocate(Size));
      ASSERT_NE(P, nullptr);
      auto Pattern = static_cast<unsigned char>(R.next());
      std::memset(P, Pattern, Size);
      Live.push_back({P, Size, Pattern});
    } else {
      size_t Index = R.nextBelow(Live.size());
      LiveObject Object = Live[Index];
      for (size_t I = 0; I < Object.Size; I += 83)
        ASSERT_EQ(Object.Ptr[I], Object.Pattern);
      A.deallocate(Object.Ptr);
      Live[Index] = Live.back();
      Live.pop_back();
    }
  }
}
