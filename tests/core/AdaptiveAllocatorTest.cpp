//===- tests/core/AdaptiveAllocatorTest.cpp - Placement policy tests -----===//

#include "core/AdaptiveAllocator.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ddm;

namespace {

StreamWindowStats window(uint64_t Mallocs, uint64_t Frees,
                         uint64_t LifoFrees = 0,
                         uint64_t DominantClassMallocs = 0,
                         uint64_t MeanBytes = 1024) {
  StreamWindowStats W;
  W.Mallocs = Mallocs;
  W.Frees = Frees;
  W.LifoFrees = LifoFrees;
  W.DominantClassMallocs = DominantClassMallocs;
  W.BytesRequested = Mallocs * MeanBytes;
  return W;
}

TEST(ChoosePlacementTest, FollowsThePaperTaxonomy) {
  // No evidence: stay general-purpose.
  EXPECT_EQ(choosePlacement(window(0, 0)), AllocatorKind::Default);
  // Transaction-scoped (almost nothing freed): bulk reclamation wins.
  EXPECT_EQ(choosePlacement(window(100, 0)), AllocatorKind::Region);
  EXPECT_EQ(choosePlacement(window(100, 10, 5)), AllocatorKind::Region);
  // Strictly LIFO frees over a bulk phase: the obstack discipline.
  EXPECT_EQ(choosePlacement(window(100, 10, 10)), AllocatorKind::Obstack);
  // Churny with one dominant size class: slab.
  EXPECT_EQ(choosePlacement(window(100, 90, 0, 70)), AllocatorKind::Slab);
  // Churny small objects: slab even without a single dominant class.
  EXPECT_EQ(choosePlacement(window(100, 90, 0, 30, 64)), AllocatorKind::Slab);
  // Churny with large mixed sizes: the general-purpose heap.
  EXPECT_EQ(choosePlacement(window(100, 90, 0, 50)), AllocatorKind::Default);
  // freeRatio exactly at the bulk threshold counts as churny.
  EXPECT_EQ(choosePlacement(window(100, 25, 0, 0)), AllocatorKind::Default);
}

AdaptiveConfig smallWindows() {
  AdaptiveConfig Config;
  Config.MinWindowMallocs = 8;
  return Config;
}

TEST(AdaptiveAllocatorTest, StartsOnTheInitialKindAndDelegates) {
  AdaptiveAllocator A(smallWindows());
  EXPECT_STREQ(A.name(), "adaptive");
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Default);
  EXPECT_EQ(A.strategySwitches(), 0u);
  EXPECT_TRUE(A.supportsBulkFree());

  void *P = A.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(A.usableSize(P), 64u);
  EXPECT_EQ(A.pendingWindow().Mallocs, 1u);
  EXPECT_EQ(A.pendingWindow().BytesRequested, 64u);
  A.deallocate(P);
  EXPECT_GT(A.memoryConsumption(), 0u);
}

TEST(AdaptiveAllocatorTest, TwoAgreeingWindowsSwitchTheStrategy) {
  AdaptiveAllocator A(smallWindows());

  // Two transaction-scoped windows (allocate, never free, bulk reclaim):
  // the first only records the recommendation, the second acts on it.
  for (unsigned Window = 0; Window < 2; ++Window) {
    for (unsigned I = 0; I < 8; ++I)
      ASSERT_NE(A.allocate(100 + I * 40), nullptr);
    A.freeAll();
  }
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Region);
  EXPECT_EQ(A.strategySwitches(), 1u);

  // Two churny single-size windows (free everything, per object): the
  // safe point is the deallocate that empties the live table.
  for (unsigned Window = 0; Window < 2; ++Window) {
    std::vector<void *> Ptrs;
    for (unsigned I = 0; I < 8; ++I) {
      void *P = A.allocate(64);
      ASSERT_NE(P, nullptr);
      Ptrs.push_back(P);
    }
    for (void *P : Ptrs)
      A.deallocate(P);
  }
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Slab);
  EXPECT_EQ(A.strategySwitches(), 2u);

  // The slab inner has no bulk free; adaptive keeps the promise by
  // sweeping the live table.
  for (unsigned I = 0; I < 4; ++I)
    ASSERT_NE(A.allocate(64), nullptr);
  A.freeAll();
  EXPECT_GE(A.usableSize(A.allocate(64)), 64u);
}

TEST(AdaptiveAllocatorTest, OneDissentingWindowResetsTheVote) {
  AdaptiveAllocator A(smallWindows());
  // Region-shaped window, then a churny one, then region again: no two
  // consecutive windows agree, so the strategy never moves.
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_NE(A.allocate(100 + I * 40), nullptr);
  A.freeAll();
  {
    std::vector<void *> Ptrs;
    for (unsigned I = 0; I < 8; ++I)
      Ptrs.push_back(A.allocate(64));
    for (void *P : Ptrs)
      A.deallocate(P);
  }
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_NE(A.allocate(100 + I * 40), nullptr);
  A.freeAll();
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Default);
  EXPECT_EQ(A.strategySwitches(), 0u);
}

TEST(AdaptiveAllocatorTest, ShortWindowsCarryForwardInsteadOfScoring) {
  AdaptiveConfig Config;
  Config.MinWindowMallocs = 64;
  AdaptiveAllocator A(Config);
  for (unsigned Round = 0; Round < 3; ++Round) {
    for (unsigned I = 0; I < 8; ++I)
      ASSERT_NE(A.allocate(48), nullptr);
    A.freeAll();
  }
  // 24 mallocs < 64: too little evidence, the window keeps accumulating.
  EXPECT_EQ(A.pendingWindow().Mallocs, 24u);
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Default);
  EXPECT_EQ(A.strategySwitches(), 0u);
}

TEST(AdaptiveAllocatorTest, LifoFreesAreRecognizedAsObstack) {
  AdaptiveAllocator A(smallWindows());
  // Mostly-bulk windows whose few frees always hit the newest object —
  // the obstack grow/trim discipline.
  for (unsigned Window = 0; Window < 2; ++Window) {
    for (unsigned I = 0; I < 10; ++I) {
      void *P = A.allocate(96);
      ASSERT_NE(P, nullptr);
      if (I % 5 == 4)
        A.deallocate(P); // Frees the most recent allocation: LIFO.
    }
    A.freeAll();
  }
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Obstack);
  EXPECT_EQ(A.strategySwitches(), 1u);
}

TEST(AdaptiveAllocatorTest, NestedLifoFreesAllCountAsLifo) {
  // The LIFO detector tracks a stack of live allocations, not just the
  // single newest one: alloc a, alloc b; free b, free a is strictly
  // LIFO and both frees must count.
  AdaptiveAllocator A(smallWindows());
  void *P = A.allocate(96);
  void *Q = A.allocate(96);
  ASSERT_NE(P, nullptr);
  ASSERT_NE(Q, nullptr);
  A.deallocate(Q);
  EXPECT_EQ(A.pendingWindow().LifoFrees, 1u);
  A.deallocate(P); // P is the top again after Q popped.
  EXPECT_EQ(A.pendingWindow().LifoFrees, 2u);

  // A mid-stack free is not LIFO, and must not break detection for the
  // objects above it.
  void *X = A.allocate(96);
  void *Y = A.allocate(96);
  void *Z = A.allocate(96);
  A.deallocate(X); // Bottom of the stack: not LIFO.
  EXPECT_EQ(A.pendingWindow().LifoFrees, 2u);
  A.deallocate(Z);
  A.deallocate(Y); // Y surfaces once Z and the stale X entry are gone.
  EXPECT_EQ(A.pendingWindow().LifoFrees, 4u);
}

TEST(AdaptiveAllocatorTest, StackShapedTrimsReachObstack) {
  // A bulk phase that trims its newest objects in nested LIFO order —
  // the real obstack grow/trim shape — must score lifoRatio 1 and reach
  // the obstack recommendation (the single-pointer detector scored this
  // 0.5 and could never get there).
  AdaptiveAllocator A(smallWindows());
  for (unsigned Window = 0; Window < 2; ++Window) {
    std::vector<void *> Ptrs;
    for (unsigned I = 0; I < 10; ++I) {
      void *P = A.allocate(96);
      ASSERT_NE(P, nullptr);
      Ptrs.push_back(P);
    }
    A.deallocate(Ptrs[9]); // Trim the top two, nested.
    A.deallocate(Ptrs[8]);
    A.freeAll();
  }
  EXPECT_EQ(A.currentStrategy(), AllocatorKind::Obstack);
  EXPECT_EQ(A.strategySwitches(), 1u);
}

TEST(AdaptiveAllocatorTest, ReallocKeepsTheLiveTableCoherent) {
  AdaptiveAllocator A(smallWindows());
  void *P = A.allocate(32);
  ASSERT_NE(P, nullptr);
  void *Q = A.reallocate(P, 32, 128);
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(A.usableSize(Q), 128u);
  EXPECT_EQ(A.pendingWindow().Reallocs, 1u);
  A.deallocate(Q);
  EXPECT_EQ(A.usableSize(Q), 0u);
}

} // namespace
