//===- tests/sim/SimSinkTest.cpp - Memory-hierarchy composition tests -----===//

#include "sim/SimSink.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(SimSinkTest, EffectiveCapacitiesXeon) {
  Platform P = xeonLike();
  // One active core: full private L1/TLB, a whole 4 MB L2.
  SimSink One(P, 1);
  EXPECT_EQ(One.effectiveL1DBytes(), 32u * 1024);
  EXPECT_EQ(One.effectiveL2Bytes(), 4u * 1024 * 1024);
  EXPECT_EQ(One.effectiveTlbEntries(), 256u);
  // Eight active cores: two share each L2.
  SimSink Eight(P, 8);
  EXPECT_EQ(Eight.effectiveL2Bytes(), 2u * 1024 * 1024);
  EXPECT_EQ(Eight.effectiveL1DBytes(), 32u * 1024);
}

TEST(SimSinkTest, EffectiveCapacitiesNiagara) {
  Platform P = niagaraLike();
  // Four threads share a core's L1 and TLB.
  SimSink One(P, 1);
  EXPECT_EQ(One.effectiveL1DBytes(), 2u * 1024);
  EXPECT_EQ(One.effectiveTlbEntries(), 16u);
  // 1 core -> 4 runtimes share the 3 MB L2.
  EXPECT_EQ(One.effectiveL2Bytes(), 3u * 1024 * 1024 / 4);
  // 8 cores -> 32 runtimes share it.
  SimSink Eight(P, 8);
  EXPECT_EQ(Eight.effectiveL2Bytes(), 3u * 1024 * 1024 / 32);
}

TEST(SimSinkTest, DomainAttribution) {
  SimSink Sink(xeonLike(), 1);
  Sink.setDomain(CostDomain::Application);
  Sink.instructions(100);
  Sink.load(0x1000, 8);
  Sink.setDomain(CostDomain::MemoryManagement);
  Sink.instructions(40);
  Sink.store(0x2000, 8);
  Sink.store(0x2008, 8);

  const DomainEvents &App = Sink.events(CostDomain::Application);
  const DomainEvents &Mm = Sink.events(CostDomain::MemoryManagement);
  EXPECT_EQ(App.Instructions, 100u);
  EXPECT_EQ(App.LineAccesses, 1u);
  EXPECT_EQ(Mm.Instructions, 40u);
  EXPECT_EQ(Mm.LineAccesses, 2u); // same line twice still counts accesses
  EXPECT_EQ(Sink.totalEvents().Instructions, 140u);
}

TEST(SimSinkTest, MissHierarchy) {
  SimSink Sink(xeonLike(), 1);
  Sink.setDomain(CostDomain::Application);
  // First touch: misses L1 and L2.
  Sink.load(0x40000, 8);
  DomainEvents E = Sink.totalEvents();
  EXPECT_EQ(E.L1DMisses, 1u);
  EXPECT_EQ(E.L2Misses, 1u);
  EXPECT_EQ(E.L2Hits, 0u);
  // Second touch: L1 hit, nothing deeper.
  Sink.load(0x40000, 8);
  E = Sink.totalEvents();
  EXPECT_EQ(E.L1DMisses, 1u);
  EXPECT_EQ(E.LineAccesses, 2u);
}

TEST(SimSinkTest, MultiLineAccessTouchesEachLine) {
  SimSink Sink(xeonLike(), 1);
  Sink.setDomain(CostDomain::Application);
  Sink.store(0x1000, 200); // spans 4 lines (0x1000..0x10C7)
  EXPECT_EQ(Sink.totalEvents().LineAccesses, 4u);
  // Unaligned spill into one extra line.
  Sink.store(0x2030, 64); // 0x2030..0x206F -> two lines
  EXPECT_EQ(Sink.totalEvents().LineAccesses, 6u);
}

TEST(SimSinkTest, StreamingTriggersPrefetcherOnXeon) {
  SimSink Sink(xeonLike(), 1);
  Sink.setDomain(CostDomain::Application);
  for (uintptr_t Addr = 0; Addr < 1024 * 1024; Addr += 64)
    Sink.store(Addr, 8);
  DomainEvents E = Sink.totalEvents();
  EXPECT_GT(E.PrefetchesIssued, 1000u);
  EXPECT_GT(E.PrefetchesUseful, 1000u);
  // Prefetching converts most stream misses into hits.
  EXPECT_LT(E.L2Misses, 1024u * 1024 / 64 / 2);
}

TEST(SimSinkTest, NoPrefetcherOnNiagara) {
  SimSink Sink(niagaraLike(), 1);
  Sink.setDomain(CostDomain::Application);
  for (uintptr_t Addr = 0; Addr < 1024 * 1024; Addr += 64)
    Sink.store(Addr, 8);
  DomainEvents E = Sink.totalEvents();
  EXPECT_EQ(E.PrefetchesIssued, 0u);
  // Every line misses in L2 (compulsory).
  EXPECT_EQ(E.L2Misses, 1024u * 1024 / 64);
}

TEST(SimSinkTest, DirtyEvictionsBecomeWritebacks) {
  SimSink Sink(xeonLike(), 8); // 2 MB effective L2
  Sink.setDomain(CostDomain::Application);
  // Write 8 MB: everything is dirtied and then evicted.
  for (uintptr_t Addr = 0; Addr < 8 * 1024 * 1024; Addr += 64)
    Sink.store(Addr, 8);
  DomainEvents E = Sink.totalEvents();
  EXPECT_GT(E.Writebacks, 8u * 1024 * 1024 / 64 / 2);
}

TEST(SimSinkTest, LargePagesCutTlbMisses) {
  Platform P = xeonLike();
  SimSink Small(P, 1, /*LargePages=*/false);
  SimSink Large(P, 1, /*LargePages=*/true);
  Small.setDomain(CostDomain::Application);
  Large.setDomain(CostDomain::Application);
  // Touch 16 MB sparsely: every page once.
  for (uintptr_t Addr = 0; Addr < 16 * 1024 * 1024; Addr += 4096) {
    Small.load(Addr, 8);
    Large.load(Addr, 8);
  }
  EXPECT_GT(Small.totalEvents().TlbMisses,
            10 * Large.totalEvents().TlbMisses);
}

TEST(SimSinkTest, ResetCountersKeepsCachesWarm) {
  SimSink Sink(xeonLike(), 1);
  Sink.setDomain(CostDomain::Application);
  Sink.load(0x9000, 8);
  Sink.resetCounters();
  EXPECT_EQ(Sink.totalEvents().LineAccesses, 0u);
  Sink.load(0x9000, 8); // still resident: hit
  EXPECT_EQ(Sink.totalEvents().L1DMisses, 0u);
}
