//===- tests/sim/PerformanceTest.cpp - Performance model tests ------------===//

#include "sim/Performance.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

/// A CPU-only workload profile: no misses at all.
PerTxEvents cpuOnly(uint64_t Instructions) {
  PerTxEvents E;
  E.App.Instructions = Instructions;
  E.AppCodeFootprintBytes = 16 * 1024; // fits in L1I: no I-misses
  E.AllocCodeFootprintBytes = 0;
  return E;
}

} // namespace

TEST(PerformanceTest, CpuBoundThroughputMatchesIpc) {
  Platform P = xeonLike();
  PerTxEvents E = cpuOnly(10'000'000);
  PerfResult R = evaluatePerformance(P, E, 1);
  // cycles = instr / IPC; tx/s = freq / cycles.
  EXPECT_NEAR(R.CyclesPerTx, 10e6 / P.BaseIpc, 1e3);
  EXPECT_NEAR(R.TxPerSec, P.FreqGHz * 1e9 / R.CyclesPerTx, 1.0);
  EXPECT_NEAR(R.BusUtilization, 0.0, 1e-9);
}

TEST(PerformanceTest, CpuBoundScalesLinearlyWithCores) {
  Platform P = xeonLike();
  PerTxEvents E = cpuOnly(10'000'000);
  PerfResult One = evaluatePerformance(P, E, 1);
  PerfResult Eight = evaluatePerformance(P, E, 8);
  EXPECT_NEAR(Eight.TxPerSec / One.TxPerSec, 8.0, 0.01);
}

TEST(PerformanceTest, MemoryStallsAddCycles) {
  Platform P = xeonLike();
  PerTxEvents Clean = cpuOnly(10'000'000);
  PerTxEvents Missy = Clean;
  Missy.App.L2Misses = 50'000;
  Missy.App.L1DMisses = 50'000;
  PerfResult A = evaluatePerformance(P, Clean, 1);
  PerfResult B = evaluatePerformance(P, Missy, 1);
  EXPECT_GT(B.CyclesPerTx, A.CyclesPerTx + 50'000 * P.MemLatencyCycles * 0.5);
}

TEST(PerformanceTest, BusSaturationLimitsThroughput) {
  Platform P = xeonLike();
  PerTxEvents E = cpuOnly(10'000'000);
  E.App.L2Misses = 200'000; // ~12.8 MB of traffic per transaction
  E.App.L1DMisses = 200'000;
  E.App.Writebacks = 100'000;
  PerfResult One = evaluatePerformance(P, E, 1);
  PerfResult Eight = evaluatePerformance(P, E, 8);
  // Eight cores cannot deliver 8x the bandwidth-heavy throughput.
  EXPECT_LT(Eight.TxPerSec / One.TxPerSec, 5.0);
  EXPECT_GT(Eight.BusUtilization, 0.6);
  // The bandwidth ceiling itself is respected.
  double BytesPerSec = Eight.TxPerSec * Eight.BusBytesPerTx;
  EXPECT_LE(BytesPerSec, P.BusBytesPerCycle * P.FreqGHz * 1e9 * 1.01);
}

TEST(PerformanceTest, NiagaraThreadsHideMemoryLatency) {
  Platform P = niagaraLike();
  PerTxEvents E = cpuOnly(10'000'000);
  E.App.L2Misses = 30'000;
  E.App.L1DMisses = 30'000;
  PerfResult R = evaluatePerformance(P, E, 1);
  // Four threads overlap the stalls: the core stays issue-bound, so the
  // throughput matches the no-miss case.
  PerfResult Clean = evaluatePerformance(P, cpuOnly(10'000'000), 1);
  EXPECT_NEAR(R.TxPerSec, Clean.TxPerSec, Clean.TxPerSec * 0.02);
  // A single-threaded core could not do that.
  Platform SingleThreaded = P;
  SingleThreaded.ThreadsPerCore = 1;
  PerfResult S = evaluatePerformance(SingleThreaded, E, 1);
  EXPECT_LT(S.TxPerSec, 0.8 * R.TxPerSec);
}

TEST(PerformanceTest, TlbMissesCostTheirPenalty) {
  Platform P = xeonLike();
  PerTxEvents Clean = cpuOnly(10'000'000);
  PerTxEvents Tlb = Clean;
  Tlb.App.TlbMisses = 100'000;
  PerfResult A = evaluatePerformance(P, Clean, 1);
  PerfResult B = evaluatePerformance(P, Tlb, 1);
  EXPECT_NEAR(B.CyclesPerTx - A.CyclesPerTx,
              100'000 * P.TlbMissPenaltyCycles, 1e4);
}

TEST(PerformanceTest, CodeFootprintDrivesL1IMisses) {
  Platform P = xeonLike();
  PerTxEvents SmallCode = cpuOnly(10'000'000);
  PerTxEvents BigCode = SmallCode;
  BigCode.AppCodeFootprintBytes = 96 * 1024;
  BigCode.AllocCodeFootprintBytes = 8 * 1024;
  PerfResult A = evaluatePerformance(P, SmallCode, 1);
  PerfResult B = evaluatePerformance(P, BigCode, 1);
  EXPECT_EQ(A.L1IMissesPerTx, 0.0);
  EXPECT_GT(B.L1IMissesPerTx, 0.0);
  EXPECT_GT(B.CyclesPerTx, A.CyclesPerTx);
}

TEST(PerformanceTest, DomainAttributionSumsToTotal) {
  Platform P = xeonLike();
  PerTxEvents E;
  E.App.Instructions = 8'000'000;
  E.Mm.Instructions = 2'000'000;
  E.App.L2Misses = 10'000;
  E.Mm.L2Misses = 3'000;
  E.App.L1DMisses = 15'000;
  E.Mm.L1DMisses = 5'000;
  PerfResult R = evaluatePerformance(P, E, 4);
  EXPECT_NEAR(R.AppCyclesPerTx + R.MmCyclesPerTx, R.CyclesPerTx, 1.0);
  EXPECT_GT(R.AppCyclesPerTx, R.MmCyclesPerTx);
}

TEST(PerformanceTest, ContentionMonotonicInCoreCount) {
  Platform P = xeonLike();
  PerTxEvents E = cpuOnly(20'000'000);
  E.App.L2Misses = 100'000;
  E.App.L1DMisses = 100'000;
  double LastPerCore = 1e18;
  for (unsigned Cores : {1u, 2u, 4u, 8u}) {
    PerfResult R = evaluatePerformance(P, E, Cores);
    double PerCore = R.TxPerSec / Cores;
    EXPECT_LE(PerCore, LastPerCore * 1.0001) << Cores << " cores";
    LastPerCore = PerCore;
  }
}
