//===- tests/sim/PrefetcherTest.cpp - Stream prefetcher tests -------------===//

#include "sim/Prefetcher.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(PrefetcherTest, SequentialMissStreamTriggersPrefetch) {
  StreamPrefetcher P(16, 2, 64);
  EXPECT_TRUE(P.onDemandMiss(0x0000).empty());  // new stream
  EXPECT_TRUE(P.onDemandMiss(0x0040).empty());  // confidence building
  auto Out = P.onDemandMiss(0x0080);            // confirmed
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 0x00C0u);
  EXPECT_EQ(Out[1], 0x0100u);
  EXPECT_EQ(P.streamsDetected(), 1u);
}

TEST(PrefetcherTest, RandomMissesNeverTrigger) {
  StreamPrefetcher P(16, 2, 64);
  uintptr_t Addresses[] = {0x10000, 0x9000, 0x4340c0, 0x22000, 0x7700,
                           0x123400, 0x88000, 0x51c0, 0x990000, 0x3000};
  for (uintptr_t Addr : Addresses)
    EXPECT_TRUE(P.onDemandMiss(Addr).empty());
  EXPECT_EQ(P.streamsDetected(), 0u);
}

TEST(PrefetcherTest, SkipOneLineStillTracks) {
  // Real streams sometimes skip a line (the prefetch already covered it).
  StreamPrefetcher P(16, 2, 64);
  P.onDemandMiss(0x0000);
  P.onDemandMiss(0x0040);
  P.onDemandMiss(0x0080);
  // Next miss skips 0x00C0 (prefetched) and lands on 0x0100: one beyond
  // the expected line, still stream-matched.
  auto Out = P.onDemandMiss(0x0100);
  EXPECT_EQ(Out.size(), 2u);
}

TEST(PrefetcherTest, TracksMultipleStreams) {
  StreamPrefetcher P(16, 1, 64);
  // Interleave two sequential streams far apart.
  uintptr_t A = 0x100000, B = 0x900000;
  P.onDemandMiss(A);
  P.onDemandMiss(B);
  P.onDemandMiss(A + 64);
  P.onDemandMiss(B + 64);
  auto OutA = P.onDemandMiss(A + 128);
  auto OutB = P.onDemandMiss(B + 128);
  EXPECT_EQ(OutA.size(), 1u);
  EXPECT_EQ(OutB.size(), 1u);
  EXPECT_EQ(P.streamsDetected(), 2u);
}

TEST(PrefetcherTest, ResetForgetsStreams) {
  StreamPrefetcher P(16, 2, 64);
  P.onDemandMiss(0x0000);
  P.onDemandMiss(0x0040);
  P.reset();
  EXPECT_TRUE(P.onDemandMiss(0x0080).empty());
  EXPECT_EQ(P.streamsDetected(), 0u);
}
