//===- tests/sim/CacheReferenceTest.cpp - Cache vs reference model --------===//
///
/// \file
/// Differential testing of the production Cache against a deliberately
/// naive reference implementation (per-set vectors with explicit LRU
/// ordering), over random and adversarial access streams, parameterized
/// by cache geometry.
///
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace ddm;

namespace {

/// The obviously-correct model: one vector per set, most recent at the
/// back.
class ReferenceCache {
public:
  ReferenceCache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes)
      : Assoc(Assoc), LineShift(__builtin_ctz(LineBytes)) {
    uint64_t Lines = SizeBytes / LineBytes;
    if (Lines < Assoc)
      Lines = Assoc;
    Sets = Lines / Assoc;
    while (Sets & (Sets - 1))
      Sets &= Sets - 1;
    if (Sets == 0)
      Sets = 1;
    Data.resize(Sets);
  }

  struct Line {
    uint64_t Addr;
    bool Dirty;
  };

  /// Returns hit; reports a dirty eviction through \p EvictedDirty.
  bool access(uintptr_t Addr, bool IsWrite, bool &EvictedDirty) {
    EvictedDirty = false;
    uint64_t LineAddr = Addr >> LineShift;
    auto &Set = Data[LineAddr & (Sets - 1)];
    for (size_t I = 0; I < Set.size(); ++I) {
      if (Set[I].Addr == LineAddr) {
        Line L = Set[I];
        L.Dirty |= IsWrite;
        Set.erase(Set.begin() + static_cast<long>(I));
        Set.push_back(L);
        return true;
      }
    }
    if (Set.size() == Assoc) {
      EvictedDirty = Set.front().Dirty;
      Set.erase(Set.begin());
    }
    Set.push_back({LineAddr, IsWrite});
    return false;
  }

private:
  unsigned Assoc;
  unsigned LineShift;
  uint64_t Sets;
  std::vector<std::vector<Line>> Data;
};

class CacheReferenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {
protected:
  uint64_t sizeBytes() const { return std::get<0>(GetParam()); }
  unsigned assoc() const { return std::get<1>(GetParam()); }
};

} // namespace

TEST_P(CacheReferenceTest, RandomStreamAgreesWithReference) {
  Cache Real(CacheGeometry{sizeBytes(), assoc(), 64});
  ReferenceCache Reference(sizeBytes(), assoc(), 64);
  Rng R(42);
  uint64_t DirtyEvictionsReal = 0, DirtyEvictionsRef = 0;
  for (int I = 0; I < 60000; ++I) {
    // Mix of hot (small range) and cold (large range) addresses.
    uintptr_t Addr = R.nextBool(0.7) ? R.nextBelow(4 * sizeBytes())
                                     : R.nextBelow(64 * sizeBytes());
    bool IsWrite = R.nextBool(0.4);
    Cache::Outcome Out = Real.access(Addr, IsWrite);
    bool RefDirty = false;
    bool RefHit = Reference.access(Addr, IsWrite, RefDirty);
    ASSERT_EQ(Out.Hit, RefHit) << "divergence at access " << I;
    if (Out.Evicted && Out.EvictedDirty)
      ++DirtyEvictionsReal;
    if (RefDirty)
      ++DirtyEvictionsRef;
  }
  EXPECT_EQ(DirtyEvictionsReal, DirtyEvictionsRef);
}

TEST_P(CacheReferenceTest, SetConflictStreamAgreesWithReference) {
  Cache Real(CacheGeometry{sizeBytes(), assoc(), 64});
  ReferenceCache Reference(sizeBytes(), assoc(), 64);
  uint64_t SetStride = Real.numSets() * 64;
  Rng R(7);
  // Adversarial: hammer a handful of lines that all map to one set.
  for (int I = 0; I < 20000; ++I) {
    uintptr_t Addr = SetStride * R.nextBelow(assoc() + 2);
    bool IsWrite = R.nextBool(0.5);
    bool RefDirty = false;
    ASSERT_EQ(Real.access(Addr, IsWrite).Hit,
              Reference.access(Addr, IsWrite, RefDirty))
        << "divergence at access " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheReferenceTest,
    ::testing::Values(std::make_tuple(uint64_t(2048), 1u),
                      std::make_tuple(uint64_t(8192), 4u),
                      std::make_tuple(uint64_t(32768), 8u),
                      std::make_tuple(uint64_t(262144), 16u),
                      std::make_tuple(uint64_t(1024), 16u)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, unsigned>> &Info) {
      return std::to_string(std::get<0>(Info.param)) + "B_" +
             std::to_string(std::get<1>(Info.param)) + "way";
    });
