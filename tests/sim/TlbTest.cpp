//===- tests/sim/TlbTest.cpp - TLB model unit tests -----------------------===//

#include "sim/Tlb.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(TlbTest, SamePageHits) {
  Tlb T(16, 4096);
  EXPECT_FALSE(T.access(0x1000));
  EXPECT_TRUE(T.access(0x1FFF));
  EXPECT_FALSE(T.access(0x2000)); // next page
  EXPECT_EQ(T.hits(), 1u);
  EXPECT_EQ(T.misses(), 2u);
}

TEST(TlbTest, LruReplacement) {
  Tlb T(2, 4096);
  T.access(0x0000);  // page 0
  T.access(0x1000);  // page 1
  T.access(0x0000);  // page 0 most recent
  T.access(0x2000);  // page 2 evicts page 1
  EXPECT_TRUE(T.access(0x0000));
  EXPECT_FALSE(T.access(0x1000)); // was evicted
}

TEST(TlbTest, LargePagesCoverMoreAddressSpace) {
  Tlb Small(8, 4096);
  Tlb Large(8, 4 * 1024 * 1024);
  // Touch 64 KB at page strides.
  uint64_t SmallMisses = 0, LargeMisses = 0;
  for (int Round = 0; Round < 2; ++Round) {
    for (uintptr_t Addr = 0; Addr < 64 * 1024; Addr += 4096) {
      if (!Small.access(Addr))
        ++SmallMisses;
      if (!Large.access(Addr))
        ++LargeMisses;
    }
  }
  // 16 4-KB pages do not fit in 8 entries; one 4-MB page covers it all.
  EXPECT_EQ(LargeMisses, 1u);
  EXPECT_GT(SmallMisses, 16u);
}

TEST(TlbTest, PageBytesReported) {
  Tlb T(4, 8192);
  EXPECT_EQ(T.pageBytes(), 8192u);
}

TEST(TlbTest, ResetClearsEntries) {
  Tlb T(4, 4096);
  T.access(0x1000);
  T.reset();
  EXPECT_EQ(T.hits(), 0u);
  EXPECT_EQ(T.misses(), 0u);
  EXPECT_FALSE(T.access(0x1000));
}
