//===- tests/sim/AccessBatchTest.cpp - Batched sink path ------------------===//
///
/// \file
/// The batched AccessSink fast path must be invisible to the simulation:
/// events drained through the shared AccessBatch buffer (with coalescing
/// and capacity auto-flush) produce the same counters as one virtual call
/// per event, and the canonical address translation makes those counters
/// independent of the real placement of the registered memory.
///
//===----------------------------------------------------------------------===//

#include "core/AccessSink.h"
#include "sim/Platform.h"
#include "sim/SimSink.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace ddm;

namespace {

void expectSameEvents(const DomainEvents &A, const DomainEvents &B) {
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.LineAccesses, B.LineAccesses);
  EXPECT_EQ(A.L1DMisses, B.L1DMisses);
  EXPECT_EQ(A.L2Hits, B.L2Hits);
  EXPECT_EQ(A.L2Misses, B.L2Misses);
  EXPECT_EQ(A.TlbMisses, B.TlbMisses);
  EXPECT_EQ(A.Writebacks, B.Writebacks);
  EXPECT_EQ(A.PrefetchesIssued, B.PrefetchesIssued);
  EXPECT_EQ(A.PrefetchesUseful, B.PrefetchesUseful);
}

/// Counts what reaches the sink, preserving the default batch dispatch.
struct CountingSink : AccessSink {
  unsigned BatchCalls = 0;
  unsigned LoadEvents = 0;
  unsigned StoreEvents = 0;
  unsigned InstrEvents = 0;
  uint64_t InstrTotal = 0;

  void load(uintptr_t, uint32_t) override { ++LoadEvents; }
  void store(uintptr_t, uint32_t) override { ++StoreEvents; }
  void instructions(uint64_t Count) override {
    ++InstrEvents;
    InstrTotal += Count;
  }
  void accesses(const AccessBatch &Batch) override {
    ++BatchCalls;
    AccessSink::accesses(Batch);
  }
};

TEST(AccessBatch, BatchedDrainMatchesImmediateDispatch) {
  Platform P = xeonLike();
  SimSink Batched(P, 1);
  SimSink Immediate(P, 1);
  SinkHandle H(&Batched);

  std::vector<std::byte> Buf(1 << 16);
  H.mapRegion(Buf.data(), Buf.size());
  Immediate.mapRegion(Buf.data(), Buf.size());

  auto Addr = [&](size_t Off) { return Buf.data() + Off; };
  for (unsigned Round = 0; Round < 4; ++Round) {
    for (size_t Off = 0; Off + 64 <= Buf.size(); Off += 192) {
      H.setDomain(CostDomain::MemoryManagement);
      Immediate.setDomain(CostDomain::MemoryManagement);
      H.load(Addr(Off), 8);
      Immediate.load(reinterpret_cast<uintptr_t>(Addr(Off)), 8);
      H.store(Addr(Off + 32), 16);
      Immediate.store(reinterpret_cast<uintptr_t>(Addr(Off + 32)), 16);
      H.instructions(7);
      Immediate.instructions(7);
      H.setDomain(CostDomain::Application);
      Immediate.setDomain(CostDomain::Application);
      H.instructions(3);
      Immediate.instructions(3);
    }
  }
  H.flush();

  expectSameEvents(Batched.events(CostDomain::Application),
                   Immediate.events(CostDomain::Application));
  expectSameEvents(Batched.events(CostDomain::MemoryManagement),
                   Immediate.events(CostDomain::MemoryManagement));
}

TEST(AccessBatch, CapacityAutoFlushDrainsWithoutExplicitFlush) {
  CountingSink Sink;
  SinkHandle H(&Sink);
  // Alternate loads and stores so nothing coalesces: 200 events fill the
  // 64-entry buffer three times over.
  for (unsigned I = 0; I < 100; ++I) {
    H.load(&Sink, 8);
    H.store(&Sink, 8);
  }
  EXPECT_EQ(Sink.BatchCalls, 3u);
  EXPECT_EQ(Sink.LoadEvents + Sink.StoreEvents, 192u);
  H.flush();
  EXPECT_EQ(Sink.BatchCalls, 4u);
  EXPECT_EQ(Sink.LoadEvents, 100u);
  EXPECT_EQ(Sink.StoreEvents, 100u);
}

TEST(AccessBatch, ConsecutiveInstructionCountsCoalesce) {
  CountingSink Sink;
  SinkHandle H(&Sink);
  for (unsigned I = 0; I < 10; ++I)
    H.instructions(5);
  H.flush();
  // One buffered event carrying the sum, drained by one batch call.
  EXPECT_EQ(Sink.InstrEvents, 1u);
  EXPECT_EQ(Sink.InstrTotal, 50u);
  EXPECT_EQ(Sink.BatchCalls, 1u);
}

TEST(CanonicalAddressing, CountersIndependentOfRealPlacement) {
  Platform P = xeonLike();
  SimSink A(P, 1);
  SimSink B(P, 1);
  SinkHandle Ha(&A), Hb(&B);

  // Two distinct real allocations; each sink registers its own. The same
  // relative access pattern must produce identical counters.
  std::vector<std::byte> BufA(1 << 15);
  std::vector<std::byte> BufB(1 << 15);
  ASSERT_NE(BufA.data(), BufB.data());
  Ha.mapRegion(BufA.data(), BufA.size());
  Hb.mapRegion(BufB.data(), BufB.size());

  for (size_t Off = 0; Off + 8 <= BufA.size(); Off += 56) {
    Ha.load(BufA.data() + Off, 8);
    Hb.load(BufB.data() + Off, 8);
    Ha.store(BufA.data() + Off, 8);
    Hb.store(BufB.data() + Off, 8);
  }
  Ha.flush();
  Hb.flush();
  expectSameEvents(A.totalEvents(), B.totalEvents());
  EXPECT_GT(A.totalEvents().L1DMisses, 0u);
}

TEST(CanonicalAddressing, FallbackFirstTouchIsPlacementIndependent) {
  Platform P = xeonLike();
  SimSink A(P, 1);
  SimSink B(P, 1);
  SinkHandle Ha(&A), Hb(&B);

  // No registration at all: unregistered addresses canonicalize per
  // first-touch page. Page-aligned allocations with the same access
  // pattern must still agree.
  constexpr size_t Size = 1 << 14;
  void *RawA = std::aligned_alloc(4096, Size);
  void *RawB = std::aligned_alloc(4096, Size);
  ASSERT_NE(RawA, nullptr);
  ASSERT_NE(RawB, nullptr);

  for (size_t Off = 0; Off + 8 <= Size; Off += 72) {
    Ha.load(static_cast<std::byte *>(RawA) + Off, 8);
    Hb.load(static_cast<std::byte *>(RawB) + Off, 8);
  }
  Ha.flush();
  Hb.flush();
  expectSameEvents(A.totalEvents(), B.totalEvents());

  std::free(RawA);
  std::free(RawB);
}

TEST(CanonicalAddressing, RemappedRegionStartsCold) {
  Platform P = xeonLike();
  SimSink S(P, 1);
  SinkHandle H(&S);
  std::vector<std::byte> Buf(64 * 64);

  auto Touch = [&] {
    for (size_t Off = 0; Off < Buf.size(); Off += 64)
      H.load(Buf.data() + Off, 8);
    H.flush();
  };

  H.mapRegion(Buf.data(), Buf.size());
  Touch();
  uint64_t ColdMisses = S.totalEvents().L1DMisses;
  EXPECT_GT(ColdMisses, 0u);

  // Warm: the canonical lines are resident now.
  S.resetCounters();
  Touch();
  EXPECT_EQ(S.totalEvents().L1DMisses, 0u);

  // Re-registration of the same real block gets a fresh canonical base,
  // so a new owner of recycled memory starts cold like a real new arena.
  S.resetCounters();
  H.unmapRegion(Buf.data());
  H.mapRegion(Buf.data(), Buf.size());
  EXPECT_EQ(S.mappedRegionCount(), 1u);
  Touch();
  EXPECT_EQ(S.totalEvents().L1DMisses, ColdMisses);
}

} // namespace
