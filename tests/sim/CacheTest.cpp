//===- tests/sim/CacheTest.cpp - Cache model unit tests -------------------===//

#include "sim/Cache.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

CacheGeometry tiny(unsigned SizeKb, unsigned Assoc) {
  return CacheGeometry{SizeKb * 1024ull, Assoc, 64};
}

} // namespace

TEST(CacheTest, CompulsoryMissThenHit) {
  Cache C(tiny(32, 8));
  EXPECT_FALSE(C.access(0x1000, false).Hit);
  EXPECT_TRUE(C.access(0x1000, false).Hit);
  EXPECT_TRUE(C.access(0x103F, false).Hit);  // same line
  EXPECT_FALSE(C.access(0x1040, false).Hit); // next line
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // 2-way, line 64: two lines per set. Three lines mapping to one set
  // evict in LRU order.
  Cache C(CacheGeometry{1024, 2, 64}); // 8 sets
  uint64_t SetStride = 8 * 64;
  uintptr_t A = 0, B = SetStride, D = 2 * SetStride;
  C.access(A, false);
  C.access(B, false);
  C.access(A, false);          // A most recent
  auto Out = C.access(D, false); // evicts B (LRU)
  EXPECT_FALSE(Out.Hit);
  EXPECT_TRUE(Out.Evicted);
  EXPECT_TRUE(C.access(A, false).Hit);
  EXPECT_FALSE(C.access(B, false).Hit); // B was the victim
}

TEST(CacheTest, DirtyEvictionReported) {
  Cache C(CacheGeometry{1024, 2, 64});
  uint64_t SetStride = 8 * 64;
  C.access(0, true); // dirty
  C.access(SetStride, false);
  auto Out = C.access(2 * SetStride, false); // evicts line 0
  ASSERT_TRUE(Out.Evicted);
  EXPECT_TRUE(Out.EvictedDirty);
  EXPECT_EQ(Out.EvictedLine, 0u);
}

TEST(CacheTest, CleanEvictionNotDirty) {
  Cache C(CacheGeometry{1024, 2, 64});
  uint64_t SetStride = 8 * 64;
  C.access(0, false);
  C.access(SetStride, false);
  auto Out = C.access(2 * SetStride, false);
  ASSERT_TRUE(Out.Evicted);
  EXPECT_FALSE(Out.EvictedDirty);
}

TEST(CacheTest, WriteMakesLineDirty) {
  Cache C(CacheGeometry{1024, 2, 64});
  uint64_t SetStride = 8 * 64;
  C.access(0, false);
  C.access(0, true); // hit-write dirties the line
  C.access(SetStride, false);
  auto Out = C.access(2 * SetStride, false);
  ASSERT_TRUE(Out.Evicted);
  EXPECT_TRUE(Out.EvictedDirty);
}

TEST(CacheTest, InstallDoesNotCountAsDemand) {
  Cache C(tiny(32, 8));
  C.install(0x2000, true);
  EXPECT_EQ(C.misses(), 0u);
  EXPECT_EQ(C.hits(), 0u);
  auto Out = C.access(0x2000, false);
  EXPECT_TRUE(Out.Hit);
  EXPECT_TRUE(Out.HitWasPrefetched);
  // The prefetched mark is consumed by the first hit.
  EXPECT_FALSE(C.access(0x2000, false).HitWasPrefetched);
}

TEST(CacheTest, InstallOnResidentLineIsNoOp) {
  Cache C(tiny(32, 8));
  C.access(0x3000, true);
  auto Out = C.install(0x3000, true);
  EXPECT_TRUE(Out.Hit);
  // The line keeps its dirty state and is not marked prefetched.
  EXPECT_FALSE(C.access(0x3000, false).HitWasPrefetched);
}

TEST(CacheTest, MarkDirtyIfPresent) {
  Cache C(tiny(32, 8));
  EXPECT_FALSE(C.markDirtyIfPresent(0x4000));
  C.access(0x4000, false);
  EXPECT_TRUE(C.markDirtyIfPresent(0x4000));
  // Eviction of that line must now report dirty.
  uint64_t Sets = C.numSets();
  for (unsigned I = 1; I <= 8; ++I)
    C.access(0x4000 + I * Sets * 64, false);
  // 8 more lines in the same set of an 8-way cache: line 0x4000 evicted.
  EXPECT_FALSE(C.probe(0x4000));
}

TEST(CacheTest, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache C(tiny(32, 8));
  for (int Round = 0; Round < 3; ++Round)
    for (uintptr_t Addr = 0; Addr < 16 * 1024; Addr += 64)
      C.access(Addr, false);
  // Rounds 2 and 3 hit entirely.
  EXPECT_EQ(C.misses(), 16u * 1024 / 64);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  Cache C(tiny(8, 2));
  uint64_t Lines = 4 * (8 * 1024) / 64; // 4x capacity
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t I = 0; I < Lines; ++I)
      C.access(I * 64, false);
  // Sequential sweep of 4x capacity with LRU: everything misses.
  EXPECT_EQ(C.misses(), 3 * Lines);
}

TEST(CacheTest, ResetClearsState) {
  Cache C(tiny(32, 8));
  C.access(0x5000, true);
  C.reset();
  EXPECT_EQ(C.hits(), 0u);
  EXPECT_EQ(C.misses(), 0u);
  EXPECT_FALSE(C.probe(0x5000));
}
