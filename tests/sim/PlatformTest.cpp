//===- tests/sim/PlatformTest.cpp - Platform preset sanity ----------------===//

#include "sim/Platform.h"

#include <gtest/gtest.h>

using namespace ddm;

TEST(PlatformTest, XeonPreset) {
  Platform P = xeonLike();
  EXPECT_EQ(P.Name, "xeon");
  EXPECT_EQ(P.Cores, 8u);
  EXPECT_EQ(P.ThreadsPerCore, 1u);
  EXPECT_EQ(P.totalThreads(), 8u);
  EXPECT_TRUE(P.HasPrefetcher);
  EXPECT_GT(P.OooOverlap, 0.0);
  EXPECT_EQ(P.CoresPerL2, 2u); // Clovertown: 4 MB L2 per core pair
  EXPECT_EQ(P.L2Bytes, 4ull * 1024 * 1024);
}

TEST(PlatformTest, NiagaraPreset) {
  Platform P = niagaraLike();
  EXPECT_EQ(P.Name, "niagara");
  EXPECT_EQ(P.Cores, 8u);
  EXPECT_EQ(P.ThreadsPerCore, 4u);
  EXPECT_EQ(P.totalThreads(), 32u);
  EXPECT_FALSE(P.HasPrefetcher); // T1 has no hardware prefetcher
  EXPECT_EQ(P.OooOverlap, 0.0);  // in-order pipeline
  EXPECT_EQ(P.CoresPerL2, 8u);   // one L2 shared chip-wide
}

TEST(PlatformTest, TheContrastsThePaperRelysOn) {
  Platform Xeon = xeonLike();
  Platform Niagara = niagaraLike();
  // "The Xeon processor focuses on fast single-thread performance ...
  // higher frequency, larger cache memories, a hardware memory
  // prefetcher, and out-of-order cores."
  EXPECT_GT(Xeon.FreqGHz, Niagara.FreqGHz);
  EXPECT_GT(Xeon.L1D.SizeBytes, Niagara.L1D.SizeBytes);
  EXPECT_GT(Xeon.BaseIpc, Niagara.BaseIpc);
  // "Niagara provides relatively higher memory bandwidth than Xeon":
  // bytes per cycle per core-clock, and per unit of compute.
  double XeonBandwidthPerCompute =
      Xeon.BusBytesPerCycle / (Xeon.Cores * Xeon.BaseIpc);
  double NiagaraBandwidthPerCompute =
      Niagara.BusBytesPerCycle / (Niagara.Cores * Niagara.BaseIpc);
  EXPECT_GT(NiagaraBandwidthPerCompute, XeonBandwidthPerCompute);
  // Software TLB refill is costlier on Niagara.
  EXPECT_GT(Niagara.TlbMissPenaltyCycles, Xeon.TlbMissPenaltyCycles);
  // Large pages exist on both (4 MB class on Niagara).
  EXPECT_GE(Niagara.LargePageBytes, 4ull * 1024 * 1024);
  EXPECT_GT(Xeon.LargePageBytes, Xeon.PageBytes);
}
