//===- tests/exec/ThreadHeapRegistryTest.cpp - Thread-safe heap soak -----===//
///
/// \file
/// The allocator zoo's threading contract, exercised directly: for every
/// kind, four threads hammer their per-thread heaps (built through
/// ThreadHeapRegistry, so DDmalloc shares the segment pool and
/// tcmalloc/hoard share a central) with allocate/free/freeAll churn, then
/// the test checks per-heap counter integrity, zero live bytes after
/// cleanup, and — for the pooled DDmalloc — that heap teardown returns
/// every segment to the pool.
///
//===----------------------------------------------------------------------===//

#include "exec/ThreadHeapRegistry.h"
#include "core/SegmentPool.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cstring>
#include <thread>
#include <vector>

using namespace ddm;

namespace {

ThreadHeapRegistry::Config configFor(AllocatorKind Kind, unsigned Threads) {
  ThreadHeapRegistry::Config C;
  C.Kind = Kind;
  C.Threads = Threads;
  C.Options.HeapReserveBytes = 64ull * 1024 * 1024;
  C.Options.RegionChunkBytes = 64ull * 1024 * 1024;
  return C;
}

/// One thread's churn: interleaved allocs, per-object frees (when
/// supported), occasional large objects, and periodic bulk cleanup.
void churn(TxAllocator &A, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::pair<void *, size_t>> Live;
  for (int Round = 0; Round < 40; ++Round) {
    for (int I = 0; I < 200; ++I) {
      size_t Size = R.nextBool(0.01) ? 20 * 1024 + R.nextBelow(60 * 1024)
                                     : 8 + R.nextBelow(256);
      void *P = A.allocate(Size);
      ASSERT_NE(P, nullptr);
      std::memset(P, 0xAB, Size);
      Live.emplace_back(P, Size);
      if (A.supportsPerObjectFree() && R.nextBool(0.5) && !Live.empty()) {
        size_t Victim = R.nextBelow(Live.size());
        A.deallocate(Live[Victim].first);
        Live[Victim] = Live.back();
        Live.pop_back();
      }
    }
    if (A.supportsBulkFree()) {
      A.freeAll();
      Live.clear();
    } else if (Round % 4 == 3) {
      for (auto &[P, Size] : Live)
        A.deallocate(P);
      Live.clear();
    }
  }
  for (auto &[P, Size] : Live)
    if (A.supportsPerObjectFree())
      A.deallocate(P);
    else
      (void)P;
  if (A.supportsBulkFree())
    A.freeAll();
}

class ThreadHeapSoak : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(ThreadHeapSoak, ConcurrentChurnKeepsCountersConsistent) {
  constexpr unsigned Threads = 4;
  AllocatorKind Kind = GetParam();
  ThreadHeapRegistry Registry(configFor(Kind, Threads));

  std::vector<std::unique_ptr<TxAllocator>> Heaps(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Heaps[T] = Registry.createHeap(T);
      churn(*Heaps[T], 0x5eed + T);
    });
  for (std::thread &W : Workers)
    W.join();

  for (unsigned T = 0; T < Threads; ++T) {
    ASSERT_NE(Heaps[T], nullptr);
    const AllocatorStats &S = Heaps[T]->stats();
    EXPECT_EQ(S.UsableBytesLive, 0u)
        << allocatorKindName(Kind) << " thread " << T;
    EXPECT_GT(S.MallocCalls, 0u);
    EXPECT_LE(S.FreeCalls, S.MallocCalls);
    EXPECT_GE(S.PeakUsableBytesLive, 0u);
  }

  if (Kind == AllocatorKind::DDmalloc) {
    SharedSegmentPool *Pool = Registry.segmentPool();
    ASSERT_NE(Pool, nullptr);
    // freeAll() already returned everything the churn acquired.
    EXPECT_EQ(Pool->segmentsOutstanding(), 0u);
    // New allocations re-acquire segments; heap teardown returns them.
    ASSERT_NE(Heaps[0]->allocate(64), nullptr);
    EXPECT_GT(Pool->segmentsOutstanding(), 0u);
    Heaps.clear();
    EXPECT_EQ(Pool->segmentsOutstanding(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ThreadHeapSoak, ::testing::ValuesIn(allAllocatorKinds()),
    [](const ::testing::TestParamInfo<AllocatorKind> &Info) {
      return std::string(allocatorKindName(Info.param));
    });

TEST(ThreadHeapRegistryTest, SharingModelPerKind) {
  EXPECT_STREQ(
      ThreadHeapRegistry(configFor(AllocatorKind::DDmalloc, 2)).sharingModel(),
      "sharded-pool");
  EXPECT_STREQ(
      ThreadHeapRegistry(configFor(AllocatorKind::TCMalloc, 2)).sharingModel(),
      "shared-central");
  EXPECT_STREQ(
      ThreadHeapRegistry(configFor(AllocatorKind::Hoard, 2)).sharingModel(),
      "shared-central");
  EXPECT_STREQ(
      ThreadHeapRegistry(configFor(AllocatorKind::Slab, 2)).sharingModel(),
      "shared-central");
  EXPECT_STREQ(
      ThreadHeapRegistry(configFor(AllocatorKind::Region, 2)).sharingModel(),
      "private-heap");
}

TEST(ThreadHeapRegistryTest, OptionsCarryShardAndBackends) {
  ThreadHeapRegistry Registry(configFor(AllocatorKind::DDmalloc, 3));
  AllocatorOptions O2 = Registry.optionsFor(2);
  EXPECT_EQ(O2.ShardId, 2u);
  EXPECT_EQ(O2.ProcessId, 2u);
  EXPECT_EQ(O2.SegmentPool.get(), Registry.segmentPool());

  ThreadHeapRegistry TcReg(configFor(AllocatorKind::TCMalloc, 2));
  EXPECT_NE(TcReg.optionsFor(0).TCCentral, nullptr);
  EXPECT_EQ(TcReg.optionsFor(0).TCCentral, TcReg.optionsFor(1).TCCentral);

  ThreadHeapRegistry HoardReg(configFor(AllocatorKind::Hoard, 2));
  EXPECT_NE(HoardReg.optionsFor(0).HoardBackend, nullptr);

  ThreadHeapRegistry SlabReg(configFor(AllocatorKind::Slab, 2));
  EXPECT_NE(SlabReg.optionsFor(0).SlabBackend, nullptr);
  EXPECT_EQ(SlabReg.optionsFor(0).SlabBackend, SlabReg.optionsFor(1).SlabBackend);

  ThreadHeapRegistry RegionReg(configFor(AllocatorKind::Region, 2));
  EXPECT_EQ(RegionReg.optionsFor(0).SegmentPool, nullptr);
  EXPECT_EQ(RegionReg.optionsFor(0).TCCentral, nullptr);
  EXPECT_EQ(RegionReg.optionsFor(0).HoardBackend, nullptr);
}

/// Shared-central teardown donates reusable memory: a tcmalloc heap's
/// death flushes its cache to the central lists, where a sibling can
/// allocate from it.
TEST(ThreadHeapRegistryTest, TCMallocTeardownDonatesToCentral) {
  ThreadHeapRegistry Registry(configFor(AllocatorKind::TCMalloc, 2));
  std::unique_ptr<TxAllocator> A = Registry.createHeap(0);
  std::unique_ptr<TxAllocator> B = Registry.createHeap(1);
  void *P = A->allocate(64);
  ASSERT_NE(P, nullptr);
  A->deallocate(P); // Now cached in A's thread cache.
  A.reset();        // Dtor flushes the cache to the shared central.
  void *Q = B->allocate(64);
  EXPECT_NE(Q, nullptr);
  B->deallocate(Q);
}

/// Same contract for the slab allocator: a dying magazine set returns its
/// stock to the shared central's slabs.
TEST(ThreadHeapRegistryTest, SlabTeardownFlushesMagazinesToCentral) {
  ThreadHeapRegistry Registry(configFor(AllocatorKind::Slab, 2));
  std::unique_ptr<TxAllocator> A = Registry.createHeap(0);
  std::unique_ptr<TxAllocator> B = Registry.createHeap(1);
  void *P = A->allocate(64);
  ASSERT_NE(P, nullptr);
  A->deallocate(P); // Parked in A's magazine.
  A.reset();        // Dtor returns the magazine stock to the central.
  void *Q = B->allocate(64);
  EXPECT_NE(Q, nullptr);
  B->deallocate(Q);
  EXPECT_EQ(B->stats().UsableBytesLive, 0u);
}

} // namespace
