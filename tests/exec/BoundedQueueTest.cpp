//===- tests/exec/BoundedQueueTest.cpp - Bounded MPMC queue tests --------===//

#include "exec/BoundedQueue.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace ddm;

namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> Q(8);
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(Q.push(I));
  for (int I = 0; I < 5; ++I) {
    int V = -1;
    EXPECT_TRUE(Q.pop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_EQ(Q.totalPushed(), 5u);
  EXPECT_EQ(Q.maxDepth(), 5u);
}

TEST(BoundedQueueTest, PopBatchDrainsUpToMax) {
  BoundedQueue<int> Q(16);
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(Q.push(I));
  std::vector<int> Batch;
  EXPECT_EQ(Q.popBatch(Batch, 4), 4u);
  EXPECT_EQ(Batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(Q.popBatch(Batch, 100), 6u);
  EXPECT_EQ(Batch.front(), 4);
  EXPECT_EQ(Batch.back(), 9);
}

TEST(BoundedQueueTest, CloseDrainsThenReportsClosed) {
  BoundedQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  Q.close();
  EXPECT_FALSE(Q.push(3));
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  std::vector<int> Batch;
  EXPECT_EQ(Q.popBatch(Batch, 8), 1u);
  EXPECT_EQ(Batch, (std::vector<int>{2}));
  EXPECT_FALSE(Q.pop(V));
  EXPECT_EQ(Q.popBatch(Batch, 8), 0u);
}

TEST(BoundedQueueTest, ZeroCapacityIsFlooredToOne) {
  // A literal zero-capacity queue could never satisfy a push; the ctor
  // floors it so producer and consumer can still rendezvous.
  BoundedQueue<int> Q(0);
  std::atomic<bool> Popped{false};
  std::thread Consumer([&] {
    int V = 0;
    EXPECT_TRUE(Q.pop(V));
    EXPECT_EQ(V, 42);
    Popped = true;
  });
  EXPECT_TRUE(Q.push(42));
  Consumer.join();
  EXPECT_TRUE(Popped.load());
  EXPECT_EQ(Q.maxDepth(), 1u);
}

TEST(BoundedQueueTest, PopBatchWithZeroMaxStillMakesProgress) {
  // Regression: popBatch(Out, 0) used to return 0 with the queue open and
  // non-empty — ambiguous with closed-and-drained, and a drain loop
  // spinning on it would livelock while the items sat in the queue.
  BoundedQueue<int> Q(8);
  ASSERT_TRUE(Q.push(7));
  ASSERT_TRUE(Q.push(8));
  std::vector<int> Batch;
  EXPECT_EQ(Q.popBatch(Batch, 0), 1u);
  EXPECT_EQ(Batch, (std::vector<int>{7}));
  EXPECT_EQ(Q.popBatch(Batch, 0), 1u);
  EXPECT_EQ(Batch, (std::vector<int>{8}));
  Q.close();
  EXPECT_EQ(Q.popBatch(Batch, 0), 0u);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::atomic<bool> PushReturned{false};
  std::thread Producer([&] {
    // Queue is full: this blocks until close().
    bool Ok = Q.push(2);
    EXPECT_FALSE(Ok);
    PushReturned = true;
  });
  Q.close();
  Producer.join();
  EXPECT_TRUE(PushReturned.load());
}

TEST(BoundedQueueTest, MpmcPreservesEverySentItem) {
  constexpr int Producers = 3;
  constexpr int Consumers = 3;
  constexpr int PerProducer = 2000;
  BoundedQueue<int> Q(64);

  std::vector<std::thread> Threads;
  for (int P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(Q.push(P * PerProducer + I));
    });

  std::atomic<long long> Sum{0};
  std::atomic<long long> Count{0};
  for (int C = 0; C < Consumers; ++C)
    Threads.emplace_back([&] {
      std::vector<int> Batch;
      while (Q.popBatch(Batch, 16) > 0)
        for (int V : Batch) {
          Sum += V;
          ++Count;
        }
    });

  // Join producers (the first Producers threads), then close.
  for (int P = 0; P < Producers; ++P)
    Threads[P].join();
  Q.close();
  for (size_t I = Producers; I < Threads.size(); ++I)
    Threads[I].join();

  long long N = Producers * PerProducer;
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2);
  EXPECT_EQ(Q.totalPushed(), static_cast<uint64_t>(N));
  EXPECT_LE(Q.maxDepth(), 64u);
}

} // namespace
