//===- tests/exec/NativeExecutorTest.cpp - Native executor tests ---------===//

#include "exec/NativeExecutor.h"
#include "runtime/TransactionRuntime.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

using namespace ddm;

namespace {

NativeExecutorConfig smallConfig(AllocatorKind Kind, unsigned Threads,
                                 uint64_t Tx) {
  NativeExecutorConfig C;
  C.Kind = Kind;
  C.Mix = {mediaWikiReadOnly()};
  C.Load.Process = ArrivalProcess::ClosedLoop; // No real-time pacing.
  C.Threads = Threads;
  C.TotalTransactions = Tx;
  C.Scale = 0.05;
  C.Seed = 42;
  C.Options.HeapReserveBytes = 64ull * 1024 * 1024;
  return C;
}

TEST(NativeExecutorTest, CompletesEveryOfferedTransaction) {
  NativeRunMetrics M = runNative(smallConfig(AllocatorKind::DDmalloc, 2, 60));
  EXPECT_EQ(M.Offered, 60u);
  EXPECT_EQ(M.Completed + M.OomAborts, M.Offered);
  EXPECT_EQ(M.OomAborts, 0u);
  EXPECT_EQ(M.LatencyUs.count(), M.Completed);
  EXPECT_GT(M.WallSec, 0.0);
  EXPECT_GT(M.Throughput, 0.0);
  EXPECT_EQ(M.SharingModel, "sharded-pool");

  uint64_t PerThreadSum = 0;
  ASSERT_EQ(M.PerThread.size(), 2u);
  for (const NativeThreadMetrics &T : M.PerThread)
    PerThreadSum += T.Completed + T.OomAborts;
  EXPECT_EQ(PerThreadSum, M.Offered);
  EXPECT_GT(M.Allocator.MallocCalls, 0u);
}

TEST(NativeExecutorTest, SingleThreadAllocatorWorkIsDeterministic) {
  NativeExecutorConfig C = smallConfig(AllocatorKind::DDmalloc, 1, 40);
  NativeRunMetrics A = runNative(C);
  NativeRunMetrics B = runNative(C);
  // Wall-clock numbers differ run to run; the executed allocation work
  // must not.
  EXPECT_EQ(A.Completed, B.Completed);
  EXPECT_EQ(A.Allocator.MallocCalls, B.Allocator.MallocCalls);
  EXPECT_EQ(A.Allocator.BytesRequested, B.Allocator.BytesRequested);
  EXPECT_EQ(A.Allocator.PeakUsableBytesLive, B.Allocator.PeakUsableBytesLive);
}

TEST(NativeExecutorTest, RngStreamsSplitTheRunSeed) {
  // Stream 0 must replay the classic single-stream runtime exactly, and
  // each worker's stream must be a genuinely different substream of the
  // same seed — the property the executor's per-(thread, workload)
  // stream assignment rests on.
  auto runWorkload = [](uint64_t Stream) {
    RuntimeConfig C;
    C.Kind = AllocatorKind::Region;
    C.Seed = 42;
    C.RngStream = Stream;
    C.Scale = 0.05;
    TransactionRuntime RT(mediaWikiReadOnly(), C);
    for (int I = 0; I < 5; ++I)
      EXPECT_EQ(RT.executeTransaction(), TxStatus::Ok);
    return RT.allocator().stats().BytesRequested;
  };
  EXPECT_EQ(runWorkload(0), runWorkload(0));
  EXPECT_NE(runWorkload(0), runWorkload(1));
  EXPECT_NE(runWorkload(1), runWorkload(2));
}

TEST(NativeExecutorTest, EveryAllocatorKindRunsMultiThreaded) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    NativeRunMetrics M = runNative(smallConfig(Kind, 4, 24));
    EXPECT_EQ(M.Completed + M.OomAborts, M.Offered)
        << allocatorKindName(Kind);
    EXPECT_GT(M.Completed, 0u) << allocatorKindName(Kind);
  }
}

TEST(NativeExecutorTest, PacedArrivalsRespectTheConfiguredRate) {
  NativeExecutorConfig C = smallConfig(AllocatorKind::DDmalloc, 2, 20);
  C.Load.Process = ArrivalProcess::Poisson;
  C.Load.RatePerSec = 400.0; // ~50 ms of offered arrivals.
  NativeRunMetrics M = runNative(C);
  EXPECT_EQ(M.Completed, 20u);
  // Open-loop pacing stretches the run to at least the arrival span.
  EXPECT_GT(M.WallSec, 0.01);
}

TEST(NativeExecutorTest, WorkerHeapFaultsAbortButNeverKillTheRun) {
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=9,worker_heap:p=0.0001", Plan, Error))
      << Error;
  FaultInjector::instance().arm(Plan);
  NativeRunMetrics M = runNative(smallConfig(AllocatorKind::DDmalloc, 4, 80));
  FaultInjector::instance().disarm();

  EXPECT_EQ(M.Completed + M.OomAborts, M.Offered);
  EXPECT_GT(M.OomAborts, 0u) << "fault plan never fired; weaken the odds";
  EXPECT_GT(M.Completed, 0u);
  EXPECT_EQ(M.LatencyUs.count(), M.Completed);
}

TEST(NativeExecutorTest, CheckedRunRejectsBadConfigs) {
  std::string Error;
  NativeExecutorConfig Empty = smallConfig(AllocatorKind::DDmalloc, 1, 10);
  Empty.Mix.clear();
  EXPECT_FALSE(runNativeChecked(Empty, Error).has_value());
  EXPECT_FALSE(Error.empty());

  NativeExecutorConfig NoStop = smallConfig(AllocatorKind::DDmalloc, 1, 0);
  EXPECT_FALSE(runNativeChecked(NoStop, Error).has_value());

  FaultPlan Plan;
  ASSERT_TRUE(FaultPlan::parse("seed=1,arena_map:every=1", Plan, Error));
  FaultInjector::instance().arm(Plan);
  NativeExecutorConfig Unmappable = smallConfig(AllocatorKind::DDmalloc, 2, 10);
  EXPECT_FALSE(runNativeChecked(Unmappable, Error).has_value());
  FaultInjector::instance().disarm();
}

} // namespace
