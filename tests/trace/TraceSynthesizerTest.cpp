//===- tests/trace/TraceSynthesizerTest.cpp - Fleet synthesis contract ----===//
///
/// The synthesizer's contract: bit-identical output for identical
/// SynthSpecs (CI regenerates and byte-compares the checked-in shard
/// set), exact transaction accounting across shards/tenants/slots, and
/// every emitted shard being a valid replayable trace.
///
//===----------------------------------------------------------------------===//

#include "trace/TraceReplayer.h"
#include "trace/TraceSynthesizer.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_synth_" + Name;
}

std::string slurp(const std::string &Path) {
  std::string Data;
  FILE *F = fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Data;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Data.append(Buffer, N);
  fclose(F);
  return Data;
}

/// A small source trace: \p Transactions transactions of a few allocs,
/// touches, work, and frees each.
std::string makeSource(const std::string &Name, uint64_t Seed,
                       int Transactions) {
  std::string Path = tempPath(Name) + TraceFileSuffix;
  TraceWriter Writer;
  TraceMeta Meta{Name, 1.0, Seed};
  EXPECT_TRUE(Writer.open(Path, Meta).ok());
  for (int Tx = 0; Tx < Transactions; ++Tx) {
    for (uint32_t I = 0; I < 8; ++I) {
      TraceEvent E;
      E.Op = TraceOp::Alloc;
      E.Id = I;
      E.Size = 32 + 8 * I + static_cast<uint64_t>(Seed);
      Writer.append(E);
    }
    TraceEvent Work;
    Work.Op = TraceOp::Work;
    Work.Size = 1000 + Tx;
    Writer.append(Work);
    for (uint32_t I = 0; I < 8; ++I) {
      TraceEvent E;
      E.Op = TraceOp::Free;
      E.Id = I;
      Writer.append(E);
    }
    TraceEvent End;
    End.Op = TraceOp::EndTx;
    Writer.append(End);
  }
  EXPECT_TRUE(Writer.finish().ok());
  return Path;
}

SynthSpec makeSpec(const std::string &A, const std::string &B) {
  SynthSpec Spec;
  Spec.Sources = {{A, 3}, {B, 1}};
  Spec.Schedule = SynthSchedule::Diurnal;
  Spec.Workers = 40;
  Spec.Transactions = 200;
  Spec.Shards = 3;
  Spec.Seed = 7;
  return Spec;
}

TEST(TraceSynthesizerTest, AccountingAddsUp) {
  std::string A = makeSource("acct_a", 1, 5);
  std::string B = makeSource("acct_b", 2, 3);
  SynthSpec Spec = makeSpec(A, B);
  SynthReport Report;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("acct_out"), Report).ok());

  ASSERT_EQ(Report.ShardPaths.size(), 3u);
  EXPECT_EQ(std::accumulate(Report.ShardTransactions.begin(),
                            Report.ShardTransactions.end(), uint64_t{0}),
            Spec.Transactions);
  EXPECT_EQ(std::accumulate(Report.SourceTransactions.begin(),
                            Report.SourceTransactions.end(), uint64_t{0}),
            Spec.Transactions);
  ASSERT_EQ(Report.SlotTransactions.size(), SynthSlots);
  EXPECT_EQ(std::accumulate(Report.SlotTransactions.begin(),
                            Report.SlotTransactions.end(), uint64_t{0}),
            Spec.Transactions);
  // Tenant weights 3:1 should be visible in the apportionment.
  EXPECT_GT(Report.SourceTransactions[0], Report.SourceTransactions[1]);

  uint64_t Events = 0;
  for (size_t I = 0; I < Report.ShardPaths.size(); ++I) {
    TraceSummary Summary;
    ASSERT_TRUE(summarizeTrace(Report.ShardPaths[I], Summary).ok())
        << Report.ShardPaths[I];
    EXPECT_EQ(Summary.Transactions, Report.ShardTransactions[I]);
    EXPECT_EQ(Summary.Events, Report.ShardEvents[I]);
    Events += Summary.Events;
    std::remove(Report.ShardPaths[I].c_str());
  }
  EXPECT_EQ(Events, Report.TotalEvents);
  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(TraceSynthesizerTest, SameSpecSameBytes) {
  std::string A = makeSource("det_a", 1, 5);
  std::string B = makeSource("det_b", 2, 3);
  SynthSpec Spec = makeSpec(A, B);
  SynthReport R1, R2;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("det_x"), R1).ok());
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("det_y"), R2).ok());
  ASSERT_EQ(R1.ShardPaths.size(), R2.ShardPaths.size());
  for (size_t I = 0; I < R1.ShardPaths.size(); ++I) {
    EXPECT_EQ(slurp(R1.ShardPaths[I]), slurp(R2.ShardPaths[I]))
        << "shard " << I;
    std::remove(R1.ShardPaths[I].c_str());
    std::remove(R2.ShardPaths[I].c_str());
  }
  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(TraceSynthesizerTest, SeedChangesTheDeal) {
  std::string A = makeSource("seed_a", 1, 5);
  std::string B = makeSource("seed_b", 2, 3);
  SynthSpec Spec = makeSpec(A, B);
  SynthReport R1;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("seed_x"), R1).ok());
  Spec.Seed = 8;
  SynthReport R2;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("seed_y"), R2).ok());
  bool AnyDiffer = false;
  for (size_t I = 0; I < R1.ShardPaths.size(); ++I) {
    AnyDiffer |= slurp(R1.ShardPaths[I]) != slurp(R2.ShardPaths[I]);
    std::remove(R1.ShardPaths[I].c_str());
    std::remove(R2.ShardPaths[I].c_str());
  }
  EXPECT_TRUE(AnyDiffer);
  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(TraceSynthesizerTest, ScheduleShapesArrivals) {
  std::string A = makeSource("sched_a", 1, 5);
  SynthSpec Spec;
  Spec.Sources = {{A, 1}};
  Spec.Workers = 40;
  Spec.Transactions = 2400;
  Spec.Shards = 2;
  Spec.Seed = 3;

  Spec.Schedule = SynthSchedule::FlashCrowd;
  SynthReport Flash;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("sched_f"), Flash).ok());
  uint64_t Peak = *std::max_element(Flash.SlotTransactions.begin(),
                                    Flash.SlotTransactions.end());
  uint64_t Min = *std::min_element(Flash.SlotTransactions.begin(),
                                   Flash.SlotTransactions.end());
  EXPECT_GE(Peak, 5 * std::max<uint64_t>(Min, 1));
  for (const std::string &P : Flash.ShardPaths)
    std::remove(P.c_str());

  Spec.Schedule = SynthSchedule::Constant;
  SynthReport Flat;
  ASSERT_TRUE(synthesizeTrace(Spec, tempPath("sched_c"), Flat).ok());
  Peak = *std::max_element(Flat.SlotTransactions.begin(),
                           Flat.SlotTransactions.end());
  Min = *std::min_element(Flat.SlotTransactions.begin(),
                          Flat.SlotTransactions.end());
  EXPECT_LE(Peak - Min, 1u); // largest-remainder rounding only
  for (const std::string &P : Flat.ShardPaths)
    std::remove(P.c_str());
  std::remove(A.c_str());
}

TEST(TraceSynthesizerTest, ScheduleNamesRoundTrip) {
  for (SynthSchedule S : {SynthSchedule::Constant, SynthSchedule::Diurnal,
                          SynthSchedule::FlashCrowd}) {
    SynthSchedule Parsed;
    ASSERT_TRUE(synthScheduleFromName(synthScheduleName(S), Parsed));
    EXPECT_EQ(Parsed, S);
  }
  SynthSchedule Ignored;
  EXPECT_FALSE(synthScheduleFromName("bogus", Ignored));
}

TEST(TraceSynthesizerTest, RefusesEmptyAndUnreadableSources) {
  SynthReport Report;
  {
    SynthSpec Spec;
    Spec.Sources = {{tempPath("no_such_file") + TraceFileSuffix, 1}};
    EXPECT_FALSE(synthesizeTrace(Spec, tempPath("bad_out"), Report).ok());
  }
  {
    // A valid container with zero transactions cannot seed a tenant.
    std::string Empty = tempPath("empty_src") + TraceFileSuffix;
    TraceWriter Writer;
    TraceMeta Meta{"empty", 1.0, 1};
    ASSERT_TRUE(Writer.open(Empty, Meta).ok());
    ASSERT_TRUE(Writer.finish().ok());
    SynthSpec Spec;
    Spec.Sources = {{Empty, 1}};
    EXPECT_FALSE(synthesizeTrace(Spec, tempPath("bad_out2"), Report).ok());
    std::remove(Empty.c_str());
  }
}

} // namespace
