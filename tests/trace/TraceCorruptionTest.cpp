//===- tests/trace/TraceCorruptionTest.cpp - Malformed-input handling -----===//
///
/// Every way a trace file can be broken must surface as a TraceStatus
/// diagnostic — never an exception, abort, or silent misread: wrong magic,
/// future version, truncated header/frame/payload, CRC mismatch, garbage
/// inside a CRC-valid payload, and semantically impossible event streams
/// (double alloc of a live id, free of an unknown id, realloc size lies,
/// truncation inside a transaction).
///
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"
#include "trace/TraceCodec.h"
#include "trace/TraceReader.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_corrupt_" + Name + TraceFileSuffix;
}

std::string slurp(const std::string &Path) {
  std::string Data;
  FILE *F = fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Data;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Data.append(Buffer, N);
  fclose(F);
  return Data;
}

void spit(const std::string &Path, const std::string &Data) {
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(fwrite(Data.data(), 1, Data.size(), F), Data.size());
  fclose(F);
}

/// Writes a small valid trace (2 transactions of allocs + frees) and
/// returns its bytes.
std::string makeValidTrace(const std::string &Path) {
  TraceWriter Writer;
  TraceMeta Meta{"synthetic", 1.0, 3};
  EXPECT_TRUE(Writer.open(Path, Meta).ok());
  for (int Tx = 0; Tx < 2; ++Tx) {
    for (uint32_t Id = 0; Id < 50; ++Id) {
      TraceEvent E;
      E.Op = TraceOp::Alloc;
      E.Id = Id;
      E.Size = 64 + Id;
      Writer.append(E);
    }
    for (uint32_t Id = 0; Id < 50; ++Id) {
      TraceEvent E;
      E.Op = TraceOp::Free;
      E.Id = Id;
      Writer.append(E);
    }
    TraceEvent End;
    End.Op = TraceOp::EndTx;
    Writer.append(End);
  }
  EXPECT_TRUE(Writer.finish().ok());
  return slurp(Path);
}

/// Expects open()-or-scan of \p Path to fail with a non-empty diagnostic.
void expectBroken(const std::string &Path) {
  TraceSummary Summary;
  TraceStatus Status = summarizeTrace(Path, Summary);
  EXPECT_FALSE(Status.ok());
  EXPECT_FALSE(Status.Message.empty());
  EXPECT_NE(Status.describe(), "ok");
}

/// Event-sequence builder for semantically invalid traces: container and
/// CRC are valid, the event stream is not.
std::string writeEventTrace(const std::string &Name,
                            const std::vector<TraceEvent> &Events) {
  std::string Path = tempPath(Name);
  TraceWriter Writer;
  TraceMeta Meta{"synthetic", 1.0, 3};
  EXPECT_TRUE(Writer.open(Path, Meta).ok());
  for (const TraceEvent &E : Events)
    Writer.append(E);
  EXPECT_TRUE(Writer.finish().ok());
  return Path;
}

TraceEvent event(TraceOp Op, uint32_t Id = 0, uint64_t Size = 0,
                 uint64_t OldSize = 0) {
  TraceEvent E;
  E.Op = Op;
  E.Id = Id;
  E.Size = Size;
  E.OldSize = OldSize;
  return E;
}

/// Frames \p Payload with a *correct* CRC and an arbitrary declared event
/// count — for crafting frames that pass integrity checks but lie.
std::string frameBytes(const std::string &Payload, uint32_t EventCount) {
  std::string Frame;
  appendU32(Frame, uint32_t(Payload.size()));
  appendU32(Frame, EventCount);
  appendU32(Frame, crc32(Payload.data(), Payload.size()));
  return Frame + Payload;
}

/// End offset of the meta frame in a trace file's bytes (the first data
/// frame starts here).
size_t metaEnd(const std::string &Data) {
  uint32_t PayloadLen = 0;
  for (int I = 0; I < 4; ++I)
    PayloadLen |= uint32_t(uint8_t(Data[12 + I])) << (8 * I);
  return 12 + 12 + PayloadLen;
}

/// A sink that performs no allocation — replay validation runs before the
/// executor sees anything, which is exactly what these tests exercise.
class NullExecutor : public TxExecutor {
public:
  void onAlloc(uint32_t, size_t) override {}
  void onFree(uint32_t) override {}
  void onRealloc(uint32_t, size_t, size_t) override {}
  void onTouch(uint32_t, bool) override {}
  void onWork(uint64_t) override {}
  void onStateTouch(uint64_t, bool) override {}
};

/// Replays \p Path to completion; returns the first non-Tx step.
TraceReplayer::Step replayAll(const std::string &Path, TraceStatus &Status,
                              uint64_t StateBytesLimit = 0) {
  TraceReplayer Replayer;
  TraceStatus Open = Replayer.open(Path);
  if (!Open.ok()) {
    Status = Open;
    return TraceReplayer::Step::Error;
  }
  NullExecutor Executor;
  TraceStats Stats;
  TraceReplayer::Step Step;
  while ((Step = Replayer.replayTransactionInto(Executor, Stats,
                                                StateBytesLimit)) ==
         TraceReplayer::Step::Tx)
    ;
  Status = Replayer.status();
  return Step;
}

} // namespace

TEST(TraceCorruptionTest, MissingFileFails) {
  TraceReader Reader;
  EXPECT_FALSE(Reader.open(tempPath("does_not_exist")).ok());
}

TEST(TraceCorruptionTest, EmptyFileFails) {
  std::string Path = tempPath("empty");
  spit(Path, "");
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, BadMagicFails) {
  std::string Path = tempPath("magic");
  std::string Data = makeValidTrace(Path);
  Data[0] = 'X';
  spit(Path, Data);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, FutureVersionFails) {
  std::string Path = tempPath("version");
  std::string Data = makeValidTrace(Path);
  Data[8] = char(99); // version field follows the 8-byte magic
  spit(Path, Data);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, TruncatedHeaderFails) {
  std::string Path = tempPath("header");
  std::string Data = makeValidTrace(Path);
  for (size_t Cut : {size_t(3), size_t(8), size_t(10)}) {
    spit(Path, Data.substr(0, Cut));
    expectBroken(Path);
  }
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, TruncatedFrameFails) {
  // Any cut that is not a frame boundary must be detected — a trace that
  // lost its tail is not silently shorter.
  std::string Path = tempPath("truncated");
  std::string Data = makeValidTrace(Path);
  for (size_t Cut : {Data.size() - 1, Data.size() - 7, Data.size() / 2}) {
    spit(Path, Data.substr(0, Cut));
    expectBroken(Path);
  }
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, FlippedPayloadByteFailsCrc) {
  std::string Path = tempPath("crc");
  std::string Data = makeValidTrace(Path);
  std::string Broken = Data;
  Broken[Broken.size() - 1] ^= 0x40; // inside the last block's payload
  spit(Path, Broken);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, CrcValidGarbagePayloadFailsDecode) {
  // Re-frame a garbage payload with a *correct* CRC: the frame passes the
  // integrity check and must then die in the event decoder.
  std::string Path = tempPath("garbage");
  std::string Data = makeValidTrace(Path);

  std::string Payload = "\xff\xff\xff\xff"; // 0xff: invalid event tag
  std::string Frame;
  auto PutU32 = [&Frame](uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Frame.push_back(char((V >> (8 * I)) & 0xff));
  };
  PutU32(uint32_t(Payload.size()));
  PutU32(4); // claims 4 events
  PutU32(crc32(Payload.data(), Payload.size()));
  Frame += Payload;

  // Keep header + meta frame, replace everything after with the garbage
  // frame. The meta frame starts at offset 12; find its end.
  size_t Pos = 12;
  auto GetU32 = [&Data](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Data[At + I])) << (8 * I);
    return V;
  };
  size_t MetaEnd = Pos + 12 + GetU32(Pos);
  spit(Path, Data.substr(0, MetaEnd) + Frame);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, EventCountLieFails) {
  // A frame claiming more events than its payload holds.
  std::string Path = tempPath("countlie");
  std::string Data = makeValidTrace(Path);
  // First data frame header is right after the meta frame.
  auto GetU32 = [&Data](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Data[At + I])) << (8 * I);
    return V;
  };
  size_t FrameAt = 12 + 12 + GetU32(12);
  uint32_t Count = GetU32(FrameAt + 4) + 1000;
  for (int I = 0; I < 4; ++I)
    Data[FrameAt + 4 + I] = char((Count >> (8 * I)) & 0xff);
  spit(Path, Data);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, OversizedFrameLengthFails) {
  std::string Path = tempPath("oversize");
  std::string Data = makeValidTrace(Path);
  // Claim a payload beyond TraceMaxBlockBytes in the first data frame.
  auto GetU32 = [&Data](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Data[At + I])) << (8 * I);
    return V;
  };
  size_t FrameAt = 12 + 12 + GetU32(12);
  uint32_t Huge = uint32_t(TraceMaxBlockBytes) + 1;
  for (int I = 0; I < 4; ++I)
    Data[FrameAt + I] = char((Huge >> (8 * I)) & 0xff);
  spit(Path, Data);
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsDoubleAllocOfLiveId) {
  std::string Path = writeEventTrace(
      "doublealloc", {event(TraceOp::Alloc, 0, 16), event(TraceOp::Alloc, 0, 16),
                      event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  EXPECT_FALSE(Status.ok());
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsFreeOfUnknownId) {
  std::string Path =
      writeEventTrace("freeunknown", {event(TraceOp::Alloc, 0, 16),
                                      event(TraceOp::Free, 3),
                                      event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsDoubleFree) {
  std::string Path = writeEventTrace(
      "doublefree", {event(TraceOp::Alloc, 0, 16), event(TraceOp::Free, 0),
                     event(TraceOp::Free, 0), event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsReallocOldSizeMismatch) {
  std::string Path = writeEventTrace(
      "reallocsize", {event(TraceOp::Alloc, 0, 16),
                      event(TraceOp::Realloc, 0, 64, /*OldSize=*/99),
                      event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsTouchOfDeadObject) {
  std::string Path = writeEventTrace(
      "touchdead", {event(TraceOp::Alloc, 0, 16), event(TraceOp::Free, 0),
                    event(TraceOp::Touch, 0), event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsStateTouchPastLimit) {
  std::string Path = writeEventTrace(
      "statetouch",
      {event(TraceOp::StateTouch, 0, /*Size=offset*/ 1 << 20),
       event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status, /*StateBytesLimit=*/4096),
            TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsEofMidTransaction) {
  // Events but no EndTx: the file is well-formed, the run is incomplete.
  std::string Path = writeEventTrace(
      "midtx", {event(TraceOp::Alloc, 0, 16), event(TraceOp::Alloc, 1, 16)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status), TraceReplayer::Step::Error);
  EXPECT_FALSE(Status.ok());
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsStateTouchOffsetWrap) {
  // An offset near 2^64 makes offset+64 wrap to a small value; the bounds
  // check must not be fooled by the wrap.
  std::string Path = writeEventTrace(
      "statewrap", {event(TraceOp::StateTouch, 0, ~uint64_t(0) - 10),
                    event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status, /*StateBytesLimit=*/4096),
            TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ReplayRejectsStateTouchWithNoStateArea) {
  // Limit 0 means the workload has no state area: every state touch is
  // out of range, including offset 0.
  std::string Path = writeEventTrace(
      "statenone",
      {event(TraceOp::StateTouch, 0, 0), event(TraceOp::EndTx)});
  TraceStatus Status;
  EXPECT_EQ(replayAll(Path, Status, /*StateBytesLimit=*/0),
            TraceReplayer::Step::Error);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, HostileIdDeltaFailsDecode) {
  // A CRC-valid frame whose free-id delta is INT64_MIN: the decoder's
  // Base - Delta must reject it as out of range, not overflow.
  std::string Path = tempPath("hostileid");
  std::string Data = makeValidTrace(Path);
  std::string Payload;
  Payload.push_back(char(TraceOp::Alloc));
  appendZigzag(Payload, 0);  // id 0 (delta from expected next id)
  appendVarint(Payload, 16); // size
  appendVarint(Payload, 0);  // alignment
  Payload.push_back(char(TraceOp::Free));
  appendZigzag(Payload, std::numeric_limits<int64_t>::min());
  spit(Path, Data.substr(0, metaEnd(Data)) + frameBytes(Payload, 2));
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, HostileWorkDeltaFailsDecode) {
  // Two work events of delta INT64_MAX: the second sum leaves the valid
  // instruction-count range and must be a decode error, not a wrap.
  std::string Path = tempPath("hostilework");
  std::string Data = makeValidTrace(Path);
  std::string Payload;
  for (int I = 0; I < 2; ++I) {
    Payload.push_back(char(TraceOp::Work));
    appendZigzag(Payload, std::numeric_limits<int64_t>::max());
  }
  spit(Path, Data.substr(0, metaEnd(Data)) + frameBytes(Payload, 2));
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, MetaNameLengthWrapFails) {
  // A metadata frame whose name length is near 2^64: Pos + NameLen wraps,
  // so the bounds check must be phrased to survive it.
  std::string Path = tempPath("metalen");
  std::string Data = makeValidTrace(Path);
  std::string Payload;
  appendVarint(Payload, ~uint64_t(0)); // workload-name length
  Payload += "x";
  spit(Path, Data.substr(0, 12) + frameBytes(Payload, 0));
  expectBroken(Path);
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, ZeroEventCountFrameWithPayloadFails) {
  // A mid-file frame declaring zero events over a non-empty payload: its
  // bytes are undeclared events and must be rejected, not replayed.
  std::string Path = tempPath("zerocount");
  std::string Data = makeValidTrace(Path);
  std::string Payload(1, char(TraceOp::EndTx));
  size_t MetaEnd = metaEnd(Data);
  spit(Path, Data.substr(0, MetaEnd) + frameBytes(Payload, 0) +
                 Data.substr(MetaEnd));
  TraceSummary Summary;
  TraceStatus Status = summarizeTrace(Path, Summary);
  ASSERT_FALSE(Status.ok());
  EXPECT_NE(Status.Message.find("trailing bytes"), std::string::npos)
      << Status.describe();
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, DiagnosticsCarryLocation) {
  // The classic triage flow: a byte flip deep in the file must report a
  // frame offset the user can actually look at.
  std::string Path = tempPath("location");
  std::string Data = makeValidTrace(Path);
  std::string Broken = Data;
  Broken[Broken.size() - 2] ^= 0x01;
  spit(Path, Broken);
  TraceSummary Summary;
  TraceStatus Status = summarizeTrace(Path, Summary);
  ASSERT_FALSE(Status.ok());
  EXPECT_GT(Status.ByteOffset, 0u);
  std::remove(Path.c_str());
}
