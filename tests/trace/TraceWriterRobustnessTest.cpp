//===- tests/trace/TraceWriterRobustnessTest.cpp - ENOSPC handling --------===//
///
/// A recording that hits a write failure (disk full, quota) must not die
/// quietly or leave a torn file: finish() has to return the original
/// diagnostic, and the file on disk has to be truncated back to the last
/// fully-flushed frame so everything before the failure is still a valid,
/// CRC-checked trace prefix.
///
/// The failure is injected with TraceWriter::limitBytesForTest (a
/// simulated ENOSPC at a byte budget), plus a real /dev/full check where
/// the device exists.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_robust_" + Name + TraceFileSuffix;
}

TraceEvent event(TraceOp Op, uint32_t Id = 0, uint64_t Size = 0) {
  TraceEvent E;
  E.Op = Op;
  E.Id = Id;
  E.Size = Size;
  return E;
}

/// Appends \p Transactions transactions of 2000 alloc/free pairs each —
/// enough to cut several 64 KiB blocks.
void appendBulk(TraceWriter &Writer, int Transactions) {
  for (int Tx = 0; Tx < Transactions; ++Tx) {
    for (uint32_t Id = 0; Id < 2000; ++Id)
      Writer.append(event(TraceOp::Alloc, Id, 64 + (Id % 128)));
    for (uint32_t Id = 0; Id < 2000; ++Id)
      Writer.append(event(TraceOp::Free, Id));
    Writer.append(event(TraceOp::EndTx));
  }
}

uint64_t fileSize(const std::string &Path) {
  struct stat St{};
  EXPECT_EQ(stat(Path.c_str(), &St), 0) << Path;
  return static_cast<uint64_t>(St.st_size);
}

/// Streams the whole file through a TraceReader; returns the number of
/// events before a clean end, failing the test on any reader error.
uint64_t countEventsExpectClean(const std::string &Path) {
  TraceReader Reader;
  EXPECT_TRUE(Reader.open(Path).ok()) << Reader.status().describe();
  TraceEvent E;
  uint64_t Count = 0;
  TraceReader::Next N;
  while ((N = Reader.next(E)) == TraceReader::Next::Event)
    ++Count;
  EXPECT_EQ(N, TraceReader::Next::End) << Reader.status().describe();
  return Count;
}

} // namespace

TEST(TraceWriterRobustnessTest, SimulatedDiskFullSurfacesAsError) {
  std::string Path = tempPath("enospc");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.limitBytesForTest(20 * 1024); // the third 64 KiB-ish frame dies
  appendBulk(Writer, 40);
  TraceStatus Status = Writer.finish();
  ASSERT_FALSE(Status.ok());
  EXPECT_NE(Status.Message.find("write failed"), std::string::npos)
      << Status.describe();
  std::remove(Path.c_str());
}

TEST(TraceWriterRobustnessTest, FailedRecordingLeavesValidPrefix) {
  // The core truncation guarantee: after a mid-stream failure the file
  // must end exactly at the last fully-flushed frame and read back
  // cleanly to a trace end — no torn frame, no CRC error.
  std::string Path = tempPath("prefix");
  uint64_t Limit = 150 * 1024;
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.limitBytesForTest(Limit);
  appendBulk(Writer, 100);
  ASSERT_FALSE(Writer.finish().ok());

  uint64_t Size = fileSize(Path);
  EXPECT_LE(Size, Limit);
  EXPECT_GT(Size, 0u);
  uint64_t Events = countEventsExpectClean(Path);
  EXPECT_GT(Events, 0u);
  std::remove(Path.c_str());
}

TEST(TraceWriterRobustnessTest, ErrorIsStickyAndIdempotent) {
  std::string Path = tempPath("sticky");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.limitBytesForTest(1024);
  appendBulk(Writer, 20);
  TraceStatus First = Writer.finish();
  ASSERT_FALSE(First.ok());
  // Appending after failure is a no-op; finish keeps the first diagnostic.
  Writer.append(event(TraceOp::EndTx));
  TraceStatus Second = Writer.finish();
  EXPECT_EQ(Second.Message, First.Message);
  std::remove(Path.c_str());
}

TEST(TraceWriterRobustnessTest, FailureBeforeFirstDataFrameTruncatesToNothingReadable) {
  // Fail so early that not even the meta frame fits: the reader must
  // diagnose the stump instead of treating it as an empty trace.
  std::string Path = tempPath("stump");
  TraceWriter Writer;
  Writer.limitBytesForTest(10); // magic+version is 12 bytes
  ASSERT_FALSE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  TraceReader Reader;
  EXPECT_FALSE(Reader.open(Path).ok());
  std::remove(Path.c_str());
}

TEST(TraceWriterRobustnessTest, InjectedTraceWriteFaultSurfacesAndSticks) {
  // The trace_write fault site fails a flush exactly like ENOSPC: the
  // diagnostic surfaces through finish(), later appends are no-ops, and
  // the on-disk prefix stays a valid CRC-checked trace.
  std::string Path = tempPath("faultsite");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());

  FaultPlan Plan;
  std::string ParseError;
  ASSERT_TRUE(FaultPlan::parse("seed=1,trace_write:p=1", Plan, ParseError));
  FaultInjector::instance().arm(Plan);
  appendBulk(Writer, 40); // the first mid-stream flush dies
  TraceStatus First = Writer.finish();
  FaultInjector::instance().disarm();

  ASSERT_FALSE(First.ok());
  EXPECT_NE(First.Message.find("injected trace_write fault"),
            std::string::npos)
      << First.describe();
  // Sticky: the diagnostic survives further use, even disarmed.
  Writer.append(event(TraceOp::EndTx));
  EXPECT_EQ(Writer.finish().Message, First.Message);
  // Whatever flushed before the fault reads back cleanly.
  countEventsExpectClean(Path);
  std::remove(Path.c_str());
}

TEST(TraceWriterRobustnessTest, RealDevFullReportsWriteFailure) {
  // The genuine article, where the platform provides it: /dev/full fails
  // every write with ENOSPC at flush time.
  FILE *Probe = fopen("/dev/full", "we");
  if (!Probe)
    GTEST_SKIP() << "/dev/full not available";
  fclose(Probe);

  TraceWriter Writer;
  TraceStatus Open = Writer.open("/dev/full", TraceMeta{"synthetic", 1.0, 3});
  if (Open.ok()) {
    appendBulk(Writer, 40);
    Open = Writer.finish();
  }
  ASSERT_FALSE(Open.ok());
  EXPECT_NE(Open.Message.find("failed"), std::string::npos)
      << Open.describe();
}
