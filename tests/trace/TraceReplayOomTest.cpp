//===- tests/trace/TraceReplayOomTest.cpp - Mid-replay heap exhaustion ----===//
///
/// A trace replayed into a runtime whose allocator runs dry (here: the
/// worker_heap fault site, deterministically) must stop with a positioned
/// diagnostic — which allocation, at which event and byte offset — instead
/// of silently replaying a rolled-back stream. The satellite of the
/// recoverable-OOM tentpole that covers the replay path.
///
//===----------------------------------------------------------------------===//

#include "runtime/TransactionRuntime.h"
#include "support/FaultInjection.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ddm;

namespace {

class TraceReplayOomTest : public testing::Test {
protected:
  void TearDown() override {
    FaultInjector::instance().disarm();
    if (!Path.empty())
      std::remove(Path.c_str());
  }

  static void arm(const std::string &Spec) {
    FaultPlan Plan;
    std::string Error;
    ASSERT_TRUE(FaultPlan::parse(Spec, Plan, Error)) << Error;
    FaultInjector::instance().arm(Plan);
  }

  static RuntimeConfig config() {
    RuntimeConfig Config;
    Config.Kind = AllocatorKind::DDmalloc;
    Config.UseBulkFree = true;
    Config.Scale = 0.05;
    Config.Seed = 77;
    return Config;
  }

  /// Records two clean transactions and returns the trace path.
  void record() {
    Path = testing::TempDir() + "ddm_replay_oom" + TraceFileSuffix;
    const WorkloadSpec W = phpBb();
    TraceRecorder Recorder;
    ASSERT_TRUE(Recorder.open(Path, TraceMeta{W.Name, 0.05, 77}).ok());
    TransactionRuntime Runtime(W, config());
    Runtime.attachTraceSink(&Recorder);
    for (int I = 0; I < 2; ++I)
      ASSERT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
    ASSERT_TRUE(Recorder.finish().ok());
  }

  std::string Path;
};

TEST_F(TraceReplayOomTest, MidReplayOomStopsWithPositionedDiagnostic) {
  record();
  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Path).ok());
  TransactionRuntime Runtime(phpBb(), config());
  arm("seed=1,worker_heap:every=30"); // the 30th replayed allocation fails
  EXPECT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::Error);

  const TraceStatus &Status = Replayer.status();
  ASSERT_FALSE(Status.ok());
  EXPECT_NE(Status.Message.find("exhausted its heap"), std::string::npos)
      << Status.describe();
  EXPECT_NE(Status.Message.find("bytes for object"), std::string::npos)
      << Status.describe();
  // Positioned: the diagnostic points into the file, at the right event.
  EXPECT_GT(Status.ByteOffset, 0u);
  EXPECT_GT(Status.EventIndex, 0u);

  // The runtime itself is still usable: the abort is the replay driver's
  // to surface, not a process failure.
  FaultInjector::instance().disarm();
  EXPECT_EQ(Runtime.completeTransaction(TraceStats()), TxStatus::OutOfMemory);
  EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
}

TEST_F(TraceReplayOomTest, CleanReplayStillWorksWhileInjectorDisarmed) {
  record();
  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Path).ok());
  TransactionRuntime Runtime(phpBb(), config());
  EXPECT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::Tx);
  EXPECT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::Tx);
  EXPECT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::End);
  EXPECT_EQ(Runtime.metrics().Transactions, 2u);
  EXPECT_EQ(Runtime.metrics().OomAborts, 0u);
}

} // namespace
