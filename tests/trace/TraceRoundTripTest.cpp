//===- tests/trace/TraceRoundTripTest.cpp - Record/replay properties ------===//
///
/// The subsystem's central property: a recorded run, replayed in-process,
/// reproduces the live run exactly — same events, same runtime metrics,
/// same allocator counters — for every workload and every allocator.
/// Because the generator's event stream never depends on the allocator,
/// one trace recorded under any allocator also drives every *other*
/// allocator at inputs identical to that allocator's own live run.
///
//===----------------------------------------------------------------------===//

#include "runtime/TransactionRuntime.h"
#include "trace/TraceReader.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string tempTracePath(const std::string &Name) {
  return testing::TempDir() + "ddm_" + Name + TraceFileSuffix;
}

RuntimeConfig testConfig(AllocatorKind Kind, bool BulkFree) {
  RuntimeConfig Config;
  Config.Kind = Kind;
  Config.UseBulkFree = BulkFree && createAllocator(Kind)->supportsBulkFree();
  Config.Scale = 0.05;
  Config.Seed = 1234;
  return Config;
}

/// Runs \p Transactions live with a recorder attached; returns the path.
std::string recordRun(const WorkloadSpec &W, const RuntimeConfig &Config,
                      unsigned Transactions, const std::string &Name) {
  std::string Path = tempTracePath(Name);
  TraceRecorder Recorder;
  TraceMeta Meta;
  Meta.Workload = W.Name;
  Meta.Scale = Config.Scale;
  Meta.Seed = Config.Seed;
  EXPECT_TRUE(Recorder.open(Path, Meta).ok());
  TransactionRuntime Runtime(W, Config);
  Runtime.attachTraceSink(&Recorder);
  for (unsigned I = 0; I < Transactions; ++I)
    Runtime.executeTransaction();
  EXPECT_TRUE(Recorder.finish().ok());
  EXPECT_EQ(Recorder.transactionsRecorded(), Transactions);
  return Path;
}

void expectSameTrace(const TraceStats &A, const TraceStats &B) {
  EXPECT_EQ(A.Mallocs, B.Mallocs);
  EXPECT_EQ(A.Frees, B.Frees);
  EXPECT_EQ(A.Reallocs, B.Reallocs);
  EXPECT_EQ(A.AllocatedBytes, B.AllocatedBytes);
  EXPECT_EQ(A.ObjectTouches, B.ObjectTouches);
  EXPECT_EQ(A.StateTouches, B.StateTouches);
  EXPECT_EQ(A.WorkInstructions, B.WorkInstructions);
}

void expectSameRun(const TransactionRuntime &Live,
                   const TransactionRuntime &Replayed) {
  const RuntimeMetrics &L = Live.metrics();
  const RuntimeMetrics &R = Replayed.metrics();
  EXPECT_EQ(L.Transactions, R.Transactions);
  EXPECT_EQ(L.Restarts, R.Restarts);
  expectSameTrace(L.TotalTrace, R.TotalTrace);
  EXPECT_EQ(L.ConsumptionBytes.count(), R.ConsumptionBytes.count());
  EXPECT_DOUBLE_EQ(L.ConsumptionBytes.mean(), R.ConsumptionBytes.mean());
}

void expectSameAllocator(TransactionRuntime &Live,
                         TransactionRuntime &Replayed) {
  const AllocatorStats &L = Live.allocator().stats();
  const AllocatorStats &R = Replayed.allocator().stats();
  EXPECT_EQ(L.MallocCalls, R.MallocCalls);
  EXPECT_EQ(L.FreeCalls, R.FreeCalls);
  EXPECT_EQ(L.FreeAllCalls, R.FreeAllCalls);
  EXPECT_EQ(L.UsableBytesLive, R.UsableBytesLive);
}

} // namespace

TEST(TraceRoundTripTest, ReplayReproducesLiveRunForEveryAllocator) {
  const WorkloadSpec W = phpBb();
  for (AllocatorKind Kind : allAllocatorKinds()) {
    SCOPED_TRACE(allocatorKindName(Kind));
    RuntimeConfig Config = testConfig(Kind, /*BulkFree=*/true);

    // Live run, recorded.
    TransactionRuntime Live(W, Config);
    TraceRecorder Recorder;
    std::string Path =
        tempTracePath(std::string("rt_") + allocatorKindName(Kind));
    TraceMeta Meta{W.Name, Config.Scale, Config.Seed};
    ASSERT_TRUE(Recorder.open(Path, Meta).ok());
    Live.attachTraceSink(&Recorder);
    for (int I = 0; I < 3; ++I)
      Live.executeTransaction();
    ASSERT_TRUE(Recorder.finish().ok());

    // Replay into a fresh runtime of the same configuration.
    TraceReplayer Replayer;
    ASSERT_TRUE(Replayer.open(Path).ok());
    TransactionRuntime Replayed(W, Config);
    for (int I = 0; I < 3; ++I)
      ASSERT_EQ(Replayer.replayTransaction(Replayed),
                TraceReplayer::Step::Tx)
          << Replayer.status().describe();
    EXPECT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::End);

    expectSameRun(Live, Replayed);
    expectSameAllocator(Live, Replayed);
    std::remove(Path.c_str());
  }
}

TEST(TraceRoundTripTest, OneTraceDrivesEveryAllocatorIdentically) {
  // Record once (under DDmalloc); replaying under allocator B must equal
  // B's own live run — the generator stream is allocator-independent.
  const WorkloadSpec W = mediaWikiReadOnly();
  RuntimeConfig RecordConfig = testConfig(AllocatorKind::DDmalloc, true);
  std::string Path = recordRun(W, RecordConfig, 2, "cross");

  for (AllocatorKind Kind : phpStudyAllocatorKinds()) {
    SCOPED_TRACE(allocatorKindName(Kind));
    RuntimeConfig Config = testConfig(Kind, /*BulkFree=*/true);

    TransactionRuntime Live(W, Config);
    Live.executeTransaction();
    Live.executeTransaction();

    TraceReplayer Replayer;
    ASSERT_TRUE(Replayer.open(Path).ok());
    TransactionRuntime Replayed(W, Config);
    ASSERT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::Tx);
    ASSERT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::Tx);

    expectSameRun(Live, Replayed);
    expectSameAllocator(Live, Replayed);
  }
  std::remove(Path.c_str());
}

TEST(TraceRoundTripTest, RubyModeReplayMatchesLiveLeakDecisions) {
  // Ruby mode's leak decisions draw from CleanupRng (keyed off the seed),
  // so replay — which never advances the generator's Rng — still leaks
  // exactly the same objects.
  const WorkloadSpec W = phpBb();
  RuntimeConfig Config = testConfig(AllocatorKind::Glibc, /*BulkFree=*/false);
  Config.LeakFraction = 0.3;
  Config.RestartPeriodTx = 2;

  TransactionRuntime Live(W, Config);
  TraceRecorder Recorder;
  std::string Path = tempTracePath("ruby");
  TraceMeta Meta{W.Name, Config.Scale, Config.Seed};
  ASSERT_TRUE(Recorder.open(Path, Meta).ok());
  Live.attachTraceSink(&Recorder);
  for (int I = 0; I < 4; ++I)
    Live.executeTransaction();
  ASSERT_TRUE(Recorder.finish().ok());

  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Path).ok());
  TransactionRuntime Replayed(W, Config);
  for (int I = 0; I < 4; ++I)
    ASSERT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::Tx)
        << Replayer.status().describe();

  EXPECT_EQ(Live.metrics().Restarts, 2u);
  expectSameRun(Live, Replayed);
  expectSameAllocator(Live, Replayed);
  std::remove(Path.c_str());
}

TEST(TraceRoundTripTest, EveryWorkloadRoundTrips) {
  for (const WorkloadSpec &W : phpWorkloads()) {
    SCOPED_TRACE(W.Name);
    RuntimeConfig Config = testConfig(AllocatorKind::Region, true);
    Config.Scale = 0.02;
    std::string Path = recordRun(W, Config, 2, "wl_" + W.Name);

    TraceSummary Summary;
    ASSERT_TRUE(summarizeTrace(Path, Summary).ok());
    EXPECT_EQ(Summary.Meta.Workload, W.Name);
    EXPECT_EQ(Summary.Transactions, 2u);
    EXPECT_GT(Summary.Total.Mallocs, 0u);

    TraceReplayer Replayer;
    ASSERT_TRUE(Replayer.open(Path).ok());
    TransactionRuntime Replayed(W, Config);
    ASSERT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::Tx);
    ASSERT_EQ(Replayer.replayTransaction(Replayed), TraceReplayer::Step::Tx);
    expectSameTrace(Summary.Total, Replayed.metrics().TotalTrace);
    std::remove(Path.c_str());
  }
}

TEST(TraceRoundTripTest, RerecordingAReplayIsByteIdentical) {
  // Attach a recorder while replaying: the copy must equal the original
  // file byte for byte (same events, same encoder state, same block cuts).
  const WorkloadSpec W = phpBb();
  RuntimeConfig Config = testConfig(AllocatorKind::DDmalloc, true);
  std::string Original = recordRun(W, Config, 3, "orig");

  std::string Copy = tempTracePath("copy");
  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Original).ok());
  TraceRecorder Recorder;
  ASSERT_TRUE(Recorder.open(Copy, Replayer.meta()).ok());
  TransactionRuntime Replayed(W, Config);
  Replayed.attachTraceSink(&Recorder);
  while (Replayer.replayTransaction(Replayed) == TraceReplayer::Step::Tx)
    ;
  ASSERT_TRUE(Replayer.status().ok()) << Replayer.status().describe();
  ASSERT_TRUE(Recorder.finish().ok());

  auto Slurp = [](const std::string &Path) {
    std::string Data;
    FILE *F = fopen(Path.c_str(), "rb");
    EXPECT_NE(F, nullptr);
    char Buffer[4096];
    size_t N;
    while ((N = fread(Buffer, 1, sizeof(Buffer), F)) > 0)
      Data.append(Buffer, N);
    fclose(F);
    return Data;
  };
  std::string A = Slurp(Original), B = Slurp(Copy);
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  std::remove(Original.c_str());
  std::remove(Copy.c_str());
}

TEST(TraceRoundTripTest, WriterReaderPreserveLongEventStreams) {
  // Enough synthetic events to span several 64 KB blocks; the reader must
  // hand back exactly the written sequence across block boundaries.
  std::string Path = tempTracePath("blocks");
  TraceMeta Meta{"synthetic", 1.0, 7};
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, Meta).ok());
  Rng R(99);
  std::vector<TraceEvent> Written;
  for (int Tx = 0; Tx < 40; ++Tx) {
    for (uint32_t Id = 0; Id < 2000; ++Id) {
      TraceEvent E;
      E.Op = TraceOp::Alloc;
      E.Id = Id;
      E.Size = 8 + R.nextBelow(512);
      Writer.append(E);
      Written.push_back(E);
    }
    TraceEvent End;
    End.Op = TraceOp::EndTx;
    Writer.append(End);
    Written.push_back(End);
  }
  ASSERT_TRUE(Writer.finish().ok());
  ASSERT_GT(Writer.bytesWritten(), 2 * TraceBlockTarget);

  TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path).ok());
  EXPECT_EQ(Reader.meta().Workload, "synthetic");
  for (size_t I = 0; I < Written.size(); ++I) {
    TraceEvent E;
    ASSERT_EQ(Reader.next(E), TraceReader::Next::Event)
        << "event " << I << ": " << Reader.status().describe();
    EXPECT_EQ(E.Op, Written[I].Op);
    EXPECT_EQ(E.Id, Written[I].Id);
    EXPECT_EQ(E.Size, Written[I].Size);
  }
  TraceEvent E;
  EXPECT_EQ(Reader.next(E), TraceReader::Next::End);
  std::remove(Path.c_str());
}
