//===- tests/trace/TraceTransformTest.cpp - Trace transformation tests ----===//

#include "runtime/TransactionRuntime.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceTransform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_xform_" + Name + TraceFileSuffix;
}

std::string slurp(const std::string &Path) {
  std::string Data;
  FILE *F = fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Data;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Data.append(Buffer, N);
  fclose(F);
  return Data;
}

/// Records \p Transactions of phpBB under DDmalloc; returns the path.
std::string recordTrace(unsigned Transactions, const std::string &Name) {
  const WorkloadSpec W = phpBb();
  RuntimeConfig Config;
  Config.Kind = AllocatorKind::DDmalloc;
  Config.Scale = 0.05;
  Config.Seed = 77;
  std::string Path = tempPath(Name);
  TraceRecorder Recorder;
  TraceMeta Meta{W.Name, Config.Scale, Config.Seed};
  EXPECT_TRUE(Recorder.open(Path, Meta).ok());
  TransactionRuntime Runtime(W, Config);
  Runtime.attachTraceSink(&Recorder);
  for (unsigned I = 0; I < Transactions; ++I)
    Runtime.executeTransaction();
  EXPECT_TRUE(Recorder.finish().ok());
  return Path;
}

TraceSummary summarize(const std::string &Path) {
  TraceSummary Summary;
  TraceStatus Status = summarizeTrace(Path, Summary);
  EXPECT_TRUE(Status.ok()) << Status.describe();
  return Summary;
}

} // namespace

TEST(TraceTransformTest, TruncateKeepsExactlyNTransactions) {
  std::string In = recordTrace(5, "trunc_in");
  std::string Out = tempPath("trunc_out");
  ASSERT_TRUE(truncateTrace(In, Out, 2).ok());

  TraceSummary Full = summarize(In);
  TraceSummary Cut = summarize(Out);
  EXPECT_EQ(Full.Transactions, 5u);
  EXPECT_EQ(Cut.Transactions, 2u);
  EXPECT_LT(Cut.Total.Mallocs, Full.Total.Mallocs);
  EXPECT_EQ(Cut.Meta.Workload, Full.Meta.Workload);
  EXPECT_EQ(Cut.Meta.Seed, Full.Meta.Seed);
  std::remove(In.c_str());
  std::remove(Out.c_str());
}

TEST(TraceTransformTest, TruncateBeyondLengthCopiesEverything) {
  std::string In = recordTrace(2, "truncall_in");
  std::string Out = tempPath("truncall_out");
  ASSERT_TRUE(truncateTrace(In, Out, 100).ok());
  EXPECT_EQ(summarize(Out).Transactions, 2u);
  std::remove(In.c_str());
  std::remove(Out.c_str());
}

TEST(TraceTransformTest, ScaleSizesScalesOnlySizes) {
  std::string In = recordTrace(2, "scale_in");
  std::string Out = tempPath("scale_out");
  ASSERT_TRUE(scaleTraceSizes(In, Out, 2.0).ok());

  TraceSummary Before = summarize(In);
  TraceSummary After = summarize(Out);
  // Call pattern unchanged; only bytes move.
  EXPECT_EQ(After.Transactions, Before.Transactions);
  EXPECT_EQ(After.Total.Mallocs, Before.Total.Mallocs);
  EXPECT_EQ(After.Total.Frees, Before.Total.Frees);
  EXPECT_EQ(After.Total.Reallocs, Before.Total.Reallocs);
  EXPECT_EQ(After.Total.WorkInstructions, Before.Total.WorkInstructions);
  // Doubling every size doubles the total to within rounding.
  EXPECT_NEAR(double(After.Total.AllocatedBytes),
              2.0 * double(Before.Total.AllocatedBytes),
              double(Before.Total.Mallocs));
  std::remove(In.c_str());
  std::remove(Out.c_str());
}

TEST(TraceTransformTest, ScaledTraceStillReplays) {
  // Scaling must keep realloc old-sizes consistent or replay validation
  // would reject the transformed trace.
  std::string In = recordTrace(2, "scalerep_in");
  std::string Out = tempPath("scalerep_out");
  ASSERT_TRUE(scaleTraceSizes(In, Out, 0.5).ok());

  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Out).ok());
  const WorkloadSpec *W = Replayer.workload();
  ASSERT_NE(W, nullptr);
  RuntimeConfig Config;
  Config.Kind = AllocatorKind::DDmalloc;
  Config.Scale = Replayer.meta().Scale;
  Config.Seed = Replayer.meta().Seed;
  TransactionRuntime Runtime(*W, Config);
  ASSERT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::Tx)
      << Replayer.status().describe();
  ASSERT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::Tx);
  EXPECT_EQ(Replayer.replayTransaction(Runtime), TraceReplayer::Step::End);
  std::remove(In.c_str());
  std::remove(Out.c_str());
}

TEST(TraceTransformTest, RejectsNonPositiveScaleFactor) {
  std::string In = recordTrace(1, "badfactor_in");
  std::string Out = tempPath("badfactor_out");
  EXPECT_FALSE(scaleTraceSizes(In, Out, 0.0).ok());
  EXPECT_FALSE(scaleTraceSizes(In, Out, -1.0).ok());
  std::remove(In.c_str());
  std::remove(Out.c_str());
}

TEST(TraceTransformTest, ShardDealsTransactionsRoundRobin) {
  std::string In = recordTrace(5, "shard_in");
  std::vector<std::string> Shards = {tempPath("shard_0"), tempPath("shard_1")};
  ASSERT_TRUE(shardTrace(In, Shards).ok());

  // 5 transactions over 2 shards: 3 + 2.
  EXPECT_EQ(summarize(Shards[0]).Transactions, 3u);
  EXPECT_EQ(summarize(Shards[1]).Transactions, 2u);
  TraceSummary Full = summarize(In);
  EXPECT_EQ(summarize(Shards[0]).Total.Mallocs +
                summarize(Shards[1]).Total.Mallocs,
            Full.Total.Mallocs);
  std::remove(In.c_str());
  for (const std::string &S : Shards)
    std::remove(S.c_str());
}

TEST(TraceTransformTest, ShardThenInterleaveIsByteIdentical) {
  // The inverse-pair property, at full strength: not just the same events
  // but the same bytes (same encoder deltas, same block cuts).
  std::string In = recordTrace(6, "inv_in");
  std::vector<std::string> Shards = {tempPath("inv_0"), tempPath("inv_1"),
                                     tempPath("inv_2")};
  ASSERT_TRUE(shardTrace(In, Shards).ok());
  std::string Merged = tempPath("inv_merged");
  ASSERT_TRUE(interleaveTraces(Shards, Merged).ok());

  std::string A = slurp(In), B = slurp(Merged);
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  std::remove(In.c_str());
  std::remove(Merged.c_str());
  for (const std::string &S : Shards)
    std::remove(S.c_str());
}

TEST(TraceTransformTest, ShardedTracesReplayIndependently) {
  std::string In = recordTrace(4, "shardrep_in");
  std::vector<std::string> Shards = {tempPath("shardrep_0"),
                                     tempPath("shardrep_1")};
  ASSERT_TRUE(shardTrace(In, Shards).ok());
  for (const std::string &Shard : Shards) {
    TraceReplayer Replayer;
    ASSERT_TRUE(Replayer.open(Shard).ok());
    const WorkloadSpec *W = Replayer.workload();
    ASSERT_NE(W, nullptr);
    RuntimeConfig Config;
    Config.Kind = AllocatorKind::Region;
    Config.Scale = Replayer.meta().Scale;
    Config.Seed = Replayer.meta().Seed;
    TransactionRuntime Runtime(*W, Config);
    while (Replayer.replayTransaction(Runtime) == TraceReplayer::Step::Tx)
      ;
    EXPECT_TRUE(Replayer.status().ok()) << Replayer.status().describe();
    EXPECT_EQ(Replayer.transactionsReplayed(), 2u);
  }
  std::remove(In.c_str());
  for (const std::string &S : Shards)
    std::remove(S.c_str());
}

TEST(TraceTransformTest, InterleaveRejectsMetaMismatch) {
  std::string A = recordTrace(1, "mismatch_a");
  // A second trace with a different workload name.
  const WorkloadSpec W = mediaWikiReadOnly();
  RuntimeConfig Config;
  Config.Kind = AllocatorKind::DDmalloc;
  Config.Scale = 0.05;
  Config.Seed = 77;
  std::string B = tempPath("mismatch_b");
  {
    TraceRecorder Recorder;
    TraceMeta Meta{W.Name, Config.Scale, Config.Seed};
    ASSERT_TRUE(Recorder.open(B, Meta).ok());
    TransactionRuntime Runtime(W, Config);
    Runtime.attachTraceSink(&Recorder);
    Runtime.executeTransaction();
    ASSERT_TRUE(Recorder.finish().ok());
  }
  std::string Out = tempPath("mismatch_out");
  EXPECT_FALSE(interleaveTraces({A, B}, Out).ok());
  std::remove(A.c_str());
  std::remove(B.c_str());
}

TEST(TraceTransformTest, TransformErrorsNameTheOffendingFile) {
  std::string Missing = tempPath("no_such_input");
  std::string Out = tempPath("never_written");
  TraceStatus Status = truncateTrace(Missing, Out, 1);
  ASSERT_FALSE(Status.ok());
  EXPECT_NE(Status.Message.find(Missing), std::string::npos);
}
