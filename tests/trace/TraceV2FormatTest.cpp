//===- tests/trace/TraceV2FormatTest.cpp - Version-2 event kinds ----------===//
///
/// Version 2 of the trace format added Calloc and AllocAligned (for the
/// LD_PRELOAD capture shim). These tests pin down the compatibility
/// contract: v2 events round-trip bit-exactly, hand-built version-1 files
/// still decode, and a v2 tag smuggled into a version-1 file is a decode
/// error rather than a misread.
///
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"
#include "trace/TraceCodec.h"
#include "trace/TraceReader.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_v2_" + Name + TraceFileSuffix;
}

void spit(const std::string &Path, const std::string &Data) {
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(fwrite(Data.data(), 1, Data.size(), F), Data.size());
  fclose(F);
}

std::string frameBytes(const std::string &Payload, uint32_t EventCount) {
  std::string Frame;
  appendU32(Frame, uint32_t(Payload.size()));
  appendU32(Frame, EventCount);
  appendU32(Frame, crc32(Payload.data(), Payload.size()));
  return Frame + Payload;
}

/// Builds a complete trace file with an explicit \p Version header around
/// the given pre-encoded event payload.
std::string buildFile(uint32_t Version, const std::string &Payload,
                      uint32_t EventCount) {
  std::string Data(TraceMagic, sizeof(TraceMagic));
  appendU32(Data, Version);
  Data += frameBytes(encodeTraceMeta(TraceMeta{"synthetic", 1.0, 3}), 0);
  Data += frameBytes(Payload, EventCount);
  return Data;
}

TraceEvent event(TraceOp Op, uint32_t Id = 0, uint64_t Size = 0,
                 uint32_t Alignment = 0) {
  TraceEvent E;
  E.Op = Op;
  E.Id = Id;
  E.Size = Size;
  E.Alignment = Alignment;
  return E;
}

std::vector<TraceEvent> readAll(const std::string &Path, TraceStatus &Status,
                                uint32_t *Version = nullptr) {
  std::vector<TraceEvent> Out;
  TraceReader Reader;
  Status = Reader.open(Path);
  if (!Status.ok())
    return Out;
  if (Version)
    *Version = Reader.version();
  TraceEvent E;
  TraceReader::Next N;
  while ((N = Reader.next(E)) == TraceReader::Next::Event)
    Out.push_back(E);
  Status = Reader.status();
  return Out;
}

} // namespace

TEST(TraceV2FormatTest, WriterStampsCurrentVersion) {
  std::string Path = tempPath("stamp");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.append(event(TraceOp::EndTx));
  ASSERT_TRUE(Writer.finish().ok());
  TraceStatus Status;
  uint32_t Version = 0;
  readAll(Path, Status, &Version);
  EXPECT_TRUE(Status.ok()) << Status.describe();
  EXPECT_EQ(Version, TraceVersion);
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, NewEventKindsRoundTrip) {
  std::string Path = tempPath("roundtrip");
  std::vector<TraceEvent> Events = {
      event(TraceOp::Alloc, 0, 48),
      event(TraceOp::Calloc, 1, 4096),
      event(TraceOp::AllocAligned, 2, 256, 64),
      event(TraceOp::Calloc, 3, 1),
      event(TraceOp::AllocAligned, 4, 512, 4096),
      event(TraceOp::Free, 1),
      event(TraceOp::EndTx),
      // Ids restart after EndTx; mix the new kinds in from the start.
      event(TraceOp::Calloc, 0, 77),
      event(TraceOp::EndTx),
  };
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  for (const TraceEvent &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.finish().ok());

  TraceStatus Status;
  std::vector<TraceEvent> Read = readAll(Path, Status);
  ASSERT_TRUE(Status.ok()) << Status.describe();
  ASSERT_EQ(Read.size(), Events.size());
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Read[I].Op, Events[I].Op) << I;
    EXPECT_EQ(Read[I].Id, Events[I].Id) << I;
    EXPECT_EQ(Read[I].Size, Events[I].Size) << I;
    EXPECT_EQ(Read[I].Alignment, Events[I].Alignment) << I;
  }
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, NewKindsAdvanceAllocIdBaseline) {
  // Calloc/AllocAligned participate in the id delta chain exactly like
  // Alloc: a following Free of the just-allocated id must encode as a
  // small delta and decode back to the right id.
  std::string Path = tempPath("deltas");
  std::vector<TraceEvent> Events = {
      event(TraceOp::Calloc, 0, 8),       event(TraceOp::AllocAligned, 1, 8, 16),
      event(TraceOp::Alloc, 2, 8),        event(TraceOp::Free, 2),
      event(TraceOp::Free, 1),            event(TraceOp::Free, 0),
      event(TraceOp::EndTx),
  };
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  for (const TraceEvent &E : Events)
    Writer.append(E);
  ASSERT_TRUE(Writer.finish().ok());
  TraceStatus Status;
  std::vector<TraceEvent> Read = readAll(Path, Status);
  ASSERT_TRUE(Status.ok()) << Status.describe();
  ASSERT_EQ(Read.size(), Events.size());
  EXPECT_EQ(Read[3].Id, 2u);
  EXPECT_EQ(Read[4].Id, 1u);
  EXPECT_EQ(Read[5].Id, 0u);
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, HandBuiltVersion1FileStillDecodes) {
  // The bytes an old writer produced: version 1 header, v1 tag layout
  // (op | write-flag). TraceEventEncoder produces exactly that layout for
  // the v1 event kinds, so encode with it and stamp version 1.
  TraceEventEncoder Encoder;
  std::string Payload;
  std::vector<TraceEvent> Events = {
      event(TraceOp::Alloc, 0, 64), event(TraceOp::Alloc, 1, 32),
      event(TraceOp::Free, 0), event(TraceOp::EndTx)};
  for (const TraceEvent &E : Events)
    Encoder.encode(E, Payload);

  std::string Path = tempPath("v1file");
  spit(Path, buildFile(1, Payload, uint32_t(Events.size())));

  TraceStatus Status;
  uint32_t Version = 0;
  std::vector<TraceEvent> Read = readAll(Path, Status, &Version);
  EXPECT_TRUE(Status.ok()) << Status.describe();
  EXPECT_EQ(Version, 1u);
  ASSERT_EQ(Read.size(), Events.size());
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Read[I].Op, Events[I].Op) << I;
    EXPECT_EQ(Read[I].Id, Events[I].Id) << I;
  }
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, V2TagInVersion1FileIsADecodeError) {
  // A version-1 trace cannot contain tag 16 (Calloc) or 17 (AllocAligned);
  // a file claiming so is corrupt, not forward-compatible.
  for (TraceOp Op : {TraceOp::Calloc, TraceOp::AllocAligned}) {
    TraceEventEncoder Encoder;
    std::string Payload;
    Encoder.encode(event(Op, 0, 16, 16), Payload);
    std::string Path = tempPath("v2tag");
    spit(Path, buildFile(1, Payload, 1));
    TraceStatus Status;
    readAll(Path, Status);
    ASSERT_FALSE(Status.ok());
    EXPECT_NE(Status.Message.find("version"), std::string::npos)
        << Status.describe();
    std::remove(Path.c_str());
  }
}

TEST(TraceV2FormatTest, ReplayerCountsAndDispatchesNewKinds) {
  // The replayer must fold the new kinds into Mallocs (they are
  // allocation-family calls) and additionally into their own counters,
  // and must dispatch them to the dedicated executor entry points.
  std::string Path = tempPath("replaystats");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.append(event(TraceOp::Alloc, 0, 100));
  Writer.append(event(TraceOp::Calloc, 1, 200));
  Writer.append(event(TraceOp::AllocAligned, 2, 300, 32));
  Writer.append(event(TraceOp::EndTx));
  ASSERT_TRUE(Writer.finish().ok());

  struct CountingExecutor : TxExecutor {
    int PlainAllocs = 0, Callocs = 0, Aligned = 0;
    uint32_t LastAlignment = 0;
    void onAlloc(uint32_t, size_t) override { ++PlainAllocs; }
    void onCalloc(uint32_t, size_t) override { ++Callocs; }
    void onAllocAligned(uint32_t, size_t, uint32_t A) override {
      ++Aligned;
      LastAlignment = A;
    }
    void onFree(uint32_t) override {}
    void onRealloc(uint32_t, size_t, size_t) override {}
    void onTouch(uint32_t, bool) override {}
    void onWork(uint64_t) override {}
    void onStateTouch(uint64_t, bool) override {}
  };

  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Path).ok());
  CountingExecutor Executor;
  TraceStats Stats;
  ASSERT_EQ(Replayer.replayTransactionInto(Executor, Stats, 0),
            TraceReplayer::Step::Tx);
  EXPECT_EQ(Executor.PlainAllocs, 1);
  EXPECT_EQ(Executor.Callocs, 1);
  EXPECT_EQ(Executor.Aligned, 1);
  EXPECT_EQ(Executor.LastAlignment, 32u);
  EXPECT_EQ(Stats.Mallocs, 3u);
  EXPECT_EQ(Stats.Callocs, 1u);
  EXPECT_EQ(Stats.AlignedAllocs, 1u);
  EXPECT_EQ(Stats.AllocatedBytes, 600u);
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, ReplayerRejectsNonPowerOfTwoAlignment) {
  std::string Path = tempPath("badalign");
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok());
  Writer.append(event(TraceOp::AllocAligned, 0, 64, 48));
  Writer.append(event(TraceOp::EndTx));
  ASSERT_TRUE(Writer.finish().ok());

  struct NullExecutor : TxExecutor {
    void onAlloc(uint32_t, size_t) override {}
    void onFree(uint32_t) override {}
    void onRealloc(uint32_t, size_t, size_t) override {}
    void onTouch(uint32_t, bool) override {}
    void onWork(uint64_t) override {}
    void onStateTouch(uint64_t, bool) override {}
  };
  TraceReplayer Replayer;
  ASSERT_TRUE(Replayer.open(Path).ok());
  NullExecutor Executor;
  TraceStats Stats;
  EXPECT_EQ(Replayer.replayTransactionInto(Executor, Stats, 0),
            TraceReplayer::Step::Error);
  EXPECT_FALSE(Replayer.status().ok());
  std::remove(Path.c_str());
}

TEST(TraceV2FormatTest, DefaultExecutorHooksDegradeToPlainAlloc) {
  // TxExecutor implementations that predate v2 (onCalloc/onAllocAligned
  // not overridden) must still see every allocation via onAlloc.
  struct LegacyExecutor : TxExecutor {
    int Allocs = 0;
    void onAlloc(uint32_t, size_t) override { ++Allocs; }
    void onFree(uint32_t) override {}
    void onRealloc(uint32_t, size_t, size_t) override {}
    void onTouch(uint32_t, bool) override {}
    void onWork(uint64_t) override {}
    void onStateTouch(uint64_t, bool) override {}
  };
  LegacyExecutor Executor;
  static_cast<TxExecutor &>(Executor).onCalloc(0, 16);
  static_cast<TxExecutor &>(Executor).onAllocAligned(1, 16, 64);
  EXPECT_EQ(Executor.Allocs, 2);
}
