//===- tests/trace/TraceCodecTest.cpp - Varint/event codec tests ----------===//

#include "trace/TraceCodec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

using namespace ddm;

namespace {

uint64_t roundTripVarint(uint64_t Value) {
  std::string Buffer;
  appendVarint(Buffer, Value);
  size_t Pos = 0;
  uint64_t Out = 0;
  EXPECT_TRUE(readVarint(Buffer.data(), Buffer.size(), Pos, Out));
  EXPECT_EQ(Pos, Buffer.size());
  return Out;
}

int64_t roundTripZigzag(int64_t Value) {
  std::string Buffer;
  appendZigzag(Buffer, Value);
  size_t Pos = 0;
  int64_t Out = 0;
  EXPECT_TRUE(readZigzag(Buffer.data(), Buffer.size(), Pos, Out));
  EXPECT_EQ(Pos, Buffer.size());
  return Out;
}

} // namespace

TEST(TraceCodecTest, VarintRoundTripsBoundaryValues) {
  for (uint64_t Value :
       {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
        uint64_t(16383), uint64_t(16384), uint64_t(1) << 32,
        std::numeric_limits<uint64_t>::max() - 1,
        std::numeric_limits<uint64_t>::max()})
    EXPECT_EQ(roundTripVarint(Value), Value) << Value;
}

TEST(TraceCodecTest, VarintUsesOneBytePerSevenBits) {
  std::string Buffer;
  appendVarint(Buffer, 127);
  EXPECT_EQ(Buffer.size(), 1u);
  Buffer.clear();
  appendVarint(Buffer, 128);
  EXPECT_EQ(Buffer.size(), 2u);
  Buffer.clear();
  appendVarint(Buffer, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(Buffer.size(), 10u);
}

TEST(TraceCodecTest, ZigzagRoundTripsSignedValues) {
  for (int64_t Value :
       {int64_t(0), int64_t(-1), int64_t(1), int64_t(-2), int64_t(1000),
        int64_t(-1000), std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max()})
    EXPECT_EQ(roundTripZigzag(Value), Value) << Value;
}

TEST(TraceCodecTest, SmallMagnitudesEncodeSmall) {
  // Zigzag's whole point: -1 must not cost ten bytes.
  std::string Buffer;
  appendZigzag(Buffer, -1);
  EXPECT_EQ(Buffer.size(), 1u);
}

TEST(TraceCodecTest, TruncatedVarintRejected) {
  std::string Buffer;
  appendVarint(Buffer, 1u << 20);
  for (size_t Cut = 0; Cut < Buffer.size(); ++Cut) {
    size_t Pos = 0;
    uint64_t Out = 0;
    EXPECT_FALSE(readVarint(Buffer.data(), Cut, Pos, Out)) << Cut;
  }
}

TEST(TraceCodecTest, OverlongVarintRejected) {
  // Eleven continuation bytes: no valid uint64 needs more than ten.
  std::string Buffer(11, char(0x80));
  Buffer.push_back(0x01);
  size_t Pos = 0;
  uint64_t Out = 0;
  EXPECT_FALSE(readVarint(Buffer.data(), Buffer.size(), Pos, Out));
}

TEST(TraceCodecTest, OverflowingTenByteVarintRejected) {
  // Ten bytes whose top byte pushes past 64 bits of payload.
  std::string Buffer(9, char(0x80));
  Buffer.push_back(0x7f);
  size_t Pos = 0;
  uint64_t Out = 0;
  EXPECT_FALSE(readVarint(Buffer.data(), Buffer.size(), Pos, Out));
}

TEST(TraceCodecTest, FixedWidthRoundTrips) {
  std::string Buffer;
  appendU32(Buffer, 0xdeadbeef);
  appendU64(Buffer, 0x0123456789abcdefull);
  EXPECT_EQ(Buffer.size(), 12u);
  size_t Pos = 0;
  uint32_t V32 = 0;
  uint64_t V64 = 0;
  EXPECT_TRUE(readU32(Buffer.data(), Buffer.size(), Pos, V32));
  EXPECT_TRUE(readU64(Buffer.data(), Buffer.size(), Pos, V64));
  EXPECT_EQ(V32, 0xdeadbeefu);
  EXPECT_EQ(V64, 0x0123456789abcdefull);
}

TEST(TraceCodecTest, EventStreamRoundTrips) {
  // One of everything, with the deltas exercised across a transaction
  // boundary (ids restart, work deltas persist).
  std::vector<TraceEvent> Events;
  auto Push = [&Events](TraceOp Op, uint32_t Id, uint64_t Size,
                        uint64_t OldSize, bool IsWrite) {
    TraceEvent E;
    E.Op = Op;
    E.Id = Id;
    E.Size = Size;
    E.OldSize = OldSize;
    E.IsWrite = IsWrite;
    Events.push_back(E);
  };
  Push(TraceOp::Work, 0, 5000, 0, false);
  Push(TraceOp::Alloc, 0, 64, 0, false);
  Push(TraceOp::Alloc, 1, 120, 0, false);
  Push(TraceOp::Touch, 0, 0, 0, true);
  Push(TraceOp::Touch, 1, 0, 0, false);
  Push(TraceOp::Realloc, 1, 240, 120, false);
  Push(TraceOp::Free, 0, 0, 0, false);
  Push(TraceOp::StateTouch, 0, 8192, 0, true);
  Push(TraceOp::Work, 0, 5100, 0, false);
  Push(TraceOp::EndTx, 0, 0, 0, false);
  Push(TraceOp::Alloc, 0, 32, 0, false); // ids restart after EndTx
  Push(TraceOp::Work, 0, 5050, 0, false);
  Push(TraceOp::EndTx, 0, 0, 0, false);

  TraceEventEncoder Encoder;
  std::string Buffer;
  for (const TraceEvent &E : Events)
    Encoder.encode(E, Buffer);

  TraceEventDecoder Decoder;
  size_t Pos = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    TraceEvent E;
    ASSERT_TRUE(Decoder.decode(Buffer.data(), Buffer.size(), Pos, E))
        << "event " << I << ": " << Decoder.errorMessage();
    EXPECT_EQ(E.Op, Events[I].Op) << I;
    EXPECT_EQ(E.Id, Events[I].Id) << I;
    EXPECT_EQ(E.Size, Events[I].Size) << I;
    EXPECT_EQ(E.OldSize, Events[I].OldSize) << I;
    EXPECT_EQ(E.IsWrite, Events[I].IsWrite) << I;
  }
  EXPECT_EQ(Pos, Buffer.size());
}

TEST(TraceCodecTest, SequentialAllocIdsEncodeCompactly) {
  // The common case — sequential ids, constant work — must stay tiny.
  TraceEventEncoder Encoder;
  std::string Buffer;
  for (uint32_t Id = 0; Id < 100; ++Id) {
    TraceEvent E;
    E.Op = TraceOp::Alloc;
    E.Id = Id;
    E.Size = 64;
    Encoder.encode(E, Buffer);
  }
  // Tag + zero id-delta + size + alignment = 4 bytes per event.
  EXPECT_LE(Buffer.size(), 400u);
}

TEST(TraceCodecTest, BadTagRejected) {
  std::string Buffer(1, char(0x7f));
  TraceEventDecoder Decoder;
  size_t Pos = 0;
  TraceEvent E;
  EXPECT_FALSE(Decoder.decode(Buffer.data(), Buffer.size(), Pos, E));
  EXPECT_FALSE(Decoder.errorMessage().empty());
}

TEST(TraceCodecTest, IdDeltaOutOfRangeRejected) {
  // A free of an id far below any allocation: decodes to a negative id.
  TraceEventEncoder Encoder;
  std::string Buffer;
  TraceEvent Alloc;
  Alloc.Op = TraceOp::Alloc;
  Alloc.Id = 0;
  Alloc.Size = 8;
  Encoder.encode(Alloc, Buffer);
  // Hand-encode a Free whose delta from PrevAllocId=0 lands at id -5.
  Buffer.push_back(char(uint8_t(TraceOp::Free)));
  appendZigzag(Buffer, int64_t(0) - int64_t(-5));

  TraceEventDecoder Decoder;
  size_t Pos = 0;
  TraceEvent E;
  ASSERT_TRUE(Decoder.decode(Buffer.data(), Buffer.size(), Pos, E));
  EXPECT_FALSE(Decoder.decode(Buffer.data(), Buffer.size(), Pos, E));
}

TEST(TraceCodecTest, MetaRoundTrips) {
  TraceMeta Meta;
  Meta.Workload = "mediawiki-read";
  Meta.Scale = 0.25;
  Meta.Seed = 0xfeedface12345678ull;
  std::string Payload = encodeTraceMeta(Meta);

  TraceMeta Out;
  std::string Error;
  ASSERT_TRUE(decodeTraceMeta(Payload.data(), Payload.size(), Out, Error))
      << Error;
  EXPECT_EQ(Out.Workload, Meta.Workload);
  EXPECT_EQ(Out.Scale, Meta.Scale);
  EXPECT_EQ(Out.Seed, Meta.Seed);
}

TEST(TraceCodecTest, MetaRejectsTrailingBytes) {
  TraceMeta Meta;
  Meta.Workload = "phpbb";
  std::string Payload = encodeTraceMeta(Meta);
  Payload.push_back('x');
  TraceMeta Out;
  std::string Error;
  EXPECT_FALSE(decodeTraceMeta(Payload.data(), Payload.size(), Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(TraceCodecTest, MetaRejectsNonPositiveScale) {
  TraceMeta Meta;
  Meta.Workload = "phpbb";
  Meta.Scale = 0.0;
  std::string Payload = encodeTraceMeta(Meta);
  TraceMeta Out;
  std::string Error;
  EXPECT_FALSE(decodeTraceMeta(Payload.data(), Payload.size(), Out, Error));
}

TEST(TraceCodecTest, MetaRejectsTruncation) {
  TraceMeta Meta;
  Meta.Workload = "mediawiki-read";
  Meta.Scale = 1.0;
  Meta.Seed = 42;
  std::string Payload = encodeTraceMeta(Meta);
  for (size_t Cut = 0; Cut < Payload.size(); ++Cut) {
    TraceMeta Out;
    std::string Error;
    EXPECT_FALSE(decodeTraceMeta(Payload.data(), Cut, Out, Error)) << Cut;
  }
}
