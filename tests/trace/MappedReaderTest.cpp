//===- tests/trace/MappedReaderTest.cpp - mmap/streaming reader parity ----===//
///
/// The mmap reader must be observationally identical to the streaming
/// reader: same decoded event sequence on valid traces, same
/// accept/reject decision on broken ones, and the same
/// prefix-then-error delivery order when corruption sits past a valid
/// block prefix. Also pins openTraceInput()'s selection policy: mmap
/// for regular files, streaming for FIFOs, and a hard error when the
/// caller forces mmap onto something unmappable.
///
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"
#include "trace/MappedTraceReader.h"
#include "trace/TraceInput.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_mapped_" + Name + TraceFileSuffix;
}

std::string slurp(const std::string &Path) {
  std::string Data;
  FILE *F = fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Data;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Data.append(Buffer, N);
  fclose(F);
  return Data;
}

void spit(const std::string &Path, const std::string &Data) {
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(fwrite(Data.data(), 1, Data.size(), F), Data.size());
  fclose(F);
}

/// A trace exercising every op the format knows, across several
/// transactions and with sizes spanning 1..4-byte varint encodings.
std::string makeFullTrace(const std::string &Path, int Transactions = 6) {
  TraceWriter Writer;
  TraceMeta Meta{"synthetic", 1.0, 11};
  EXPECT_TRUE(Writer.open(Path, Meta).ok());
  auto Emit = [&](TraceOp Op, uint32_t Id, uint64_t Size, uint64_t OldSize,
                  uint32_t Alignment, bool IsWrite) {
    TraceEvent E;
    E.Op = Op;
    E.Id = Id;
    E.Size = Size;
    E.OldSize = OldSize;
    E.Alignment = Alignment;
    E.IsWrite = IsWrite;
    Writer.append(E);
  };
  for (int Tx = 0; Tx < Transactions; ++Tx) {
    uint32_t Base = static_cast<uint32_t>(Tx) * 100;
    for (uint32_t I = 0; I < 20; ++I)
      Emit(TraceOp::Alloc, Base + I, 17 + 37 * I + (I % 3 ? 0 : 70000), 0, 0,
           false);
    Emit(TraceOp::Calloc, Base + 20, 256, 0, 0, false);
    Emit(TraceOp::AllocAligned, Base + 21, 4096, 0, 64, false);
    for (uint32_t I = 0; I < 20; I += 2)
      Emit(TraceOp::Touch, Base + I, 0, 0, 0, I % 4 == 0);
    Emit(TraceOp::Realloc, Base + 3, 4000, 17 + 37 * 3, 0, false);
    Emit(TraceOp::Work, 0, 12345 + Tx, 0, 0, false);
    Emit(TraceOp::StateTouch, 0, 150000 + 13 * Tx, 0, 0, Tx % 2 == 0);
    for (uint32_t I = 0; I < 22; ++I)
      Emit(TraceOp::Free, Base + I, 0, 0, 0, false);
    Emit(TraceOp::EndTx, 0, 0, 0, 0, false);
  }
  EXPECT_TRUE(Writer.finish().ok());
  return slurp(Path);
}

/// Drains \p In completely; returns decoded events and the final status.
std::vector<TraceEvent> drain(TraceInput &In, TraceStatus &Status) {
  std::vector<TraceEvent> Events;
  TraceEventSpan Span;
  TraceInput::Next R;
  while ((R = In.nextBatch(Span)) == TraceInput::Next::Event)
    Events.insert(Events.end(), Span.begin(), Span.end());
  Status = In.status();
  return Events;
}

void expectSameEvents(const std::vector<TraceEvent> &A,
                      const std::vector<TraceEvent> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Op, B[I].Op) << "event " << I;
    EXPECT_EQ(A[I].Id, B[I].Id) << "event " << I;
    EXPECT_EQ(A[I].Size, B[I].Size) << "event " << I;
    EXPECT_EQ(A[I].OldSize, B[I].OldSize) << "event " << I;
    EXPECT_EQ(A[I].Alignment, B[I].Alignment) << "event " << I;
    EXPECT_EQ(A[I].IsWrite, B[I].IsWrite) << "event " << I;
  }
}

/// Both readers over \p Path: same events, same accept/reject, same
/// number of events delivered ahead of any error.
void expectParity(const std::string &Path) {
  TraceReader Stream;
  ASSERT_TRUE(Stream.open(Path).ok()) << Path;
  TraceStatus StreamStatus;
  std::vector<TraceEvent> StreamEvents = drain(Stream, StreamStatus);

  MappedTraceReader Mapped;
  ASSERT_TRUE(Mapped.open(Path).ok()) << Path;
  TraceStatus MappedStatus;
  std::vector<TraceEvent> MappedEvents = drain(Mapped, MappedStatus);

  EXPECT_EQ(StreamStatus.ok(), MappedStatus.ok()) << Path;
  expectSameEvents(StreamEvents, MappedEvents);
}

TEST(MappedReaderTest, ParityOnFullOpMix) {
  std::string Path = tempPath("parity_full");
  makeFullTrace(Path);
  expectParity(Path);

  MappedTraceReader Mapped;
  ASSERT_TRUE(Mapped.open(Path).ok());
  EXPECT_STREQ(Mapped.readerName(), "mmap");
  EXPECT_EQ(Mapped.meta().Workload, "synthetic");
  EXPECT_EQ(Mapped.meta().Seed, 11u);
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, ParityOnLargeMultiBlockTrace) {
  // ~50 transactions of ~70 events: several 64 KiB frames, so the
  // mapped reader crosses block boundaries mid-span and the delta
  // decoder state (PrevAllocId, PrevWork) must survive the crossing.
  std::string Path = tempPath("parity_large");
  makeFullTrace(Path, 50);
  expectParity(Path);
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, AutoPicksMmapForRegularFiles) {
  std::string Path = tempPath("auto_regular");
  makeFullTrace(Path);
  TraceStatus S;
  std::unique_ptr<TraceInput> In =
      openTraceInput(Path, TraceReaderKind::Auto, S);
  ASSERT_NE(In, nullptr) << S.describe();
  EXPECT_STREQ(In->readerName(), "mmap");
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, AutoFallsBackToStreamingForFifos) {
  std::string Regular = tempPath("fifo_src");
  std::string Bytes = makeFullTrace(Regular);
  std::string Fifo = testing::TempDir() + "ddm_mapped_fifo";
  std::remove(Fifo.c_str());
  ASSERT_EQ(mkfifo(Fifo.c_str(), 0600), 0) << strerror(errno);

  // Forcing mmap onto a FIFO must fail up front, before any open(2)
  // blocks on the unconnected pipe.
  {
    TraceStatus S;
    std::unique_ptr<TraceInput> In =
        openTraceInput(Fifo, TraceReaderKind::Mapped, S);
    EXPECT_EQ(In, nullptr);
    EXPECT_FALSE(S.ok());
  }

  std::thread Writer([&] {
    FILE *F = fopen(Fifo.c_str(), "wb");
    if (!F)
      return;
    fwrite(Bytes.data(), 1, Bytes.size(), F);
    fclose(F);
  });
  TraceStatus S;
  std::unique_ptr<TraceInput> In =
      openTraceInput(Fifo, TraceReaderKind::Auto, S);
  ASSERT_NE(In, nullptr) << S.describe();
  EXPECT_STREQ(In->readerName(), "stream");
  TraceStatus End;
  std::vector<TraceEvent> FifoEvents = drain(*In, End);
  EXPECT_TRUE(End.ok()) << End.describe();
  Writer.join();

  TraceReader Stream;
  ASSERT_TRUE(Stream.open(Regular).ok());
  TraceStatus StreamStatus;
  expectSameEvents(drain(Stream, StreamStatus), FifoEvents);
  std::remove(Fifo.c_str());
  std::remove(Regular.c_str());
}

TEST(MappedReaderTest, RejectsNonTraces) {
  std::string Path = tempPath("not_a_trace");
  for (const std::string &Bytes :
       {std::string(), std::string("short"),
        std::string("garbage-not-a-trace-header-at-all")}) {
    spit(Path, Bytes);
    MappedTraceReader Reader;
    EXPECT_FALSE(Reader.open(Path).ok()) << "bytes: " << Bytes.size();
  }
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, RejectsFutureVersion) {
  std::string Path = tempPath("future_version");
  std::string Bytes = makeFullTrace(Path);
  Bytes[8] = 99; // version u32le follows the 8-byte magic
  spit(Path, Bytes);
  MappedTraceReader Reader;
  TraceStatus S = Reader.open(Path);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Message.find("version"), std::string::npos) << S.describe();
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, TornFinalFrameIsTruncationNotSilence) {
  std::string Path = tempPath("torn");
  std::string Bytes = makeFullTrace(Path);
  // Chop mid-frame at several depths: each must surface as an error on
  // both readers, never a clean End.
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() - 7, Bytes.size() / 2}) {
    spit(Path, Bytes.substr(0, Cut));
    MappedTraceReader Mapped;
    ASSERT_TRUE(Mapped.open(Path).ok());
    TraceStatus MappedStatus;
    std::vector<TraceEvent> MappedEvents = drain(Mapped, MappedStatus);
    EXPECT_FALSE(MappedStatus.ok()) << "cut at " << Cut;

    TraceReader Stream;
    ASSERT_TRUE(Stream.open(Path).ok());
    TraceStatus StreamStatus;
    std::vector<TraceEvent> StreamEvents = drain(Stream, StreamStatus);
    EXPECT_FALSE(StreamStatus.ok()) << "cut at " << Cut;
    expectSameEvents(StreamEvents, MappedEvents);
  }
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, CrcFlipIsDetected) {
  std::string Path = tempPath("crcflip");
  std::string Bytes = makeFullTrace(Path);
  std::string Flipped = Bytes;
  Flipped[Flipped.size() - 3] ^= 0x40; // inside the last frame's payload
  spit(Path, Flipped);

  MappedTraceReader Mapped;
  ASSERT_TRUE(Mapped.open(Path).ok());
  TraceStatus MappedStatus;
  std::vector<TraceEvent> MappedEvents = drain(Mapped, MappedStatus);
  EXPECT_FALSE(MappedStatus.ok());
  EXPECT_NE(MappedStatus.Message.find("CRC"), std::string::npos)
      << MappedStatus.describe();

  // Prefix delivery order: every event of the earlier, intact frames is
  // still delivered, and matches the streaming reader's prefix.
  TraceReader Stream;
  ASSERT_TRUE(Stream.open(Path).ok());
  TraceStatus StreamStatus;
  std::vector<TraceEvent> StreamEvents = drain(Stream, StreamStatus);
  EXPECT_FALSE(StreamStatus.ok());
  expectSameEvents(StreamEvents, MappedEvents);
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, GarbageInsideValidCrcFrameIsRejected) {
  std::string Path = tempPath("garbage_payload");
  std::string Bytes = makeFullTrace(Path);
  // Find the first event frame (the frame after the meta frame), stomp
  // its payload with invalid tags, and re-seal the CRC so the framing
  // layer accepts it — the decoder itself must reject.
  size_t HeaderLen = 12; // magic + version
  size_t MetaLen = 0;
  std::memcpy(&MetaLen, Bytes.data() + HeaderLen, 4);
  size_t Frame = HeaderLen + 12 + MetaLen;
  uint32_t PayloadLen = 0;
  std::memcpy(&PayloadLen, Bytes.data() + Frame, 4);
  ASSERT_GT(PayloadLen, 0u);
  std::string Broken = Bytes;
  for (size_t I = 0; I < PayloadLen; ++I)
    Broken[Frame + 12 + I] = static_cast<char>(0xEE); // invalid tag
  uint32_t NewCrc = crc32(Broken.data() + Frame + 12, PayloadLen);
  std::memcpy(&Broken[Frame + 8], &NewCrc, 4);
  spit(Path, Broken);

  MappedTraceReader Mapped;
  ASSERT_TRUE(Mapped.open(Path).ok());
  TraceStatus MappedStatus;
  std::vector<TraceEvent> MappedEvents = drain(Mapped, MappedStatus);
  EXPECT_FALSE(MappedStatus.ok());

  TraceReader Stream;
  ASSERT_TRUE(Stream.open(Path).ok());
  TraceStatus StreamStatus;
  std::vector<TraceEvent> StreamEvents = drain(Stream, StreamStatus);
  EXPECT_FALSE(StreamStatus.ok());
  expectSameEvents(StreamEvents, MappedEvents);
  std::remove(Path.c_str());
}

TEST(MappedReaderTest, TrailingGarbageAfterFinalFrame) {
  std::string Path = tempPath("trailing");
  std::string Bytes = makeFullTrace(Path);
  spit(Path, Bytes + std::string(5, '\x7f'));
  MappedTraceReader Mapped;
  ASSERT_TRUE(Mapped.open(Path).ok());
  TraceStatus MappedStatus;
  drain(Mapped, MappedStatus);
  EXPECT_FALSE(MappedStatus.ok());

  TraceReader Stream;
  ASSERT_TRUE(Stream.open(Path).ok());
  TraceStatus StreamStatus;
  drain(Stream, StreamStatus);
  EXPECT_FALSE(StreamStatus.ok());
  std::remove(Path.c_str());
}

} // namespace
