//===- tests/server/LoadGeneratorTest.cpp - Arrival-process tests ---------===//

#include "server/LoadGenerator.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

using namespace ddm;

namespace {

std::vector<double> arrivalTimes(const LoadConfig &Config, unsigned N) {
  LoadGenerator Gen(Config);
  std::vector<double> Times;
  Times.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Times.push_back(Gen.nextArrivalSec());
  return Times;
}

} // namespace

TEST(LoadGeneratorTest, SameSeedSameArrivalSequence) {
  for (ArrivalProcess Process :
       {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
    LoadConfig Config;
    Config.Process = Process;
    Config.RatePerSec = 250.0;
    Config.Seed = 0xfeed;
    std::vector<double> A = arrivalTimes(Config, 500);
    std::vector<double> B = arrivalTimes(Config, 500);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I)
      EXPECT_DOUBLE_EQ(A[I], B[I]) << arrivalProcessName(Process);
  }
}

TEST(LoadGeneratorTest, DifferentSeedsDiffer) {
  LoadConfig Config;
  Config.Seed = 1;
  std::vector<double> A = arrivalTimes(Config, 50);
  Config.Seed = 2;
  std::vector<double> B = arrivalTimes(Config, 50);
  EXPECT_NE(A.front(), B.front());
}

TEST(LoadGeneratorTest, ArrivalsAreMonotone) {
  for (ArrivalProcess Process :
       {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
    LoadConfig Config;
    Config.Process = Process;
    std::vector<double> Times = arrivalTimes(Config, 2000);
    for (size_t I = 1; I < Times.size(); ++I)
      EXPECT_GE(Times[I], Times[I - 1]);
  }
}

TEST(LoadGeneratorTest, PoissonLongRunRateMatches) {
  LoadConfig Config;
  Config.RatePerSec = 400.0;
  Config.Seed = 9;
  std::vector<double> Times = arrivalTimes(Config, 40000);
  double Rate = static_cast<double>(Times.size()) / Times.back();
  EXPECT_NEAR(Rate / Config.RatePerSec, 1.0, 0.03);
}

TEST(LoadGeneratorTest, BurstyLongRunRateMatches) {
  LoadConfig Config;
  Config.Process = ArrivalProcess::Bursty;
  Config.RatePerSec = 400.0;
  Config.BurstBoost = 4.0;
  Config.BurstOnFraction = 0.2;
  Config.MeanOnSec = 0.25;
  Config.Seed = 11;
  std::vector<double> Times = arrivalTimes(Config, 60000);
  double Rate = static_cast<double>(Times.size()) / Times.back();
  // On-off phases need more averaging than plain Poisson.
  EXPECT_NEAR(Rate / Config.RatePerSec, 1.0, 0.10);
}

TEST(LoadGeneratorTest, BurstyIsBurstierThanPoisson) {
  // Index of dispersion of counts in fixed windows: 1 for Poisson, > 1
  // for the on-off modulated process.
  auto Dispersion = [](const std::vector<double> &Times, double Window) {
    std::vector<uint64_t> Counts(
        static_cast<size_t>(Times.back() / Window) + 1, 0);
    for (double T : Times)
      ++Counts[static_cast<size_t>(T / Window)];
    double Mean = 0, Var = 0;
    for (uint64_t C : Counts)
      Mean += static_cast<double>(C);
    Mean /= static_cast<double>(Counts.size());
    for (uint64_t C : Counts)
      Var += (static_cast<double>(C) - Mean) * (static_cast<double>(C) - Mean);
    Var /= static_cast<double>(Counts.size());
    return Var / Mean;
  };
  LoadConfig Config;
  Config.RatePerSec = 300.0;
  Config.Seed = 21;
  std::vector<double> Poisson = arrivalTimes(Config, 30000);
  Config.Process = ArrivalProcess::Bursty;
  Config.BurstBoost = 4.0;
  Config.BurstOnFraction = 0.2;
  std::vector<double> Bursty = arrivalTimes(Config, 30000);
  double DPoisson = Dispersion(Poisson, 0.1);
  double DBursty = Dispersion(Bursty, 0.1);
  EXPECT_NEAR(DPoisson, 1.0, 0.25);
  EXPECT_GT(DBursty, 2.0 * DPoisson);
}

TEST(LoadGeneratorTest, MixWeightsAreRespected) {
  LoadConfig Config;
  Config.MixWeights = {3.0, 1.0};
  Config.Seed = 5;
  LoadGenerator Gen(Config);
  unsigned Counts[2] = {0, 0};
  for (int I = 0; I < 20000; ++I)
    ++Counts[Gen.pickWorkload()];
  double Share = static_cast<double>(Counts[0]) / 20000.0;
  EXPECT_NEAR(Share, 0.75, 0.02);
}

TEST(LoadGeneratorTest, ThinkTimesHaveTheConfiguredMean) {
  LoadConfig Config;
  Config.Process = ArrivalProcess::ClosedLoop;
  Config.MeanThinkSec = 0.05;
  Config.Seed = 8;
  LoadGenerator Gen(Config);
  double Sum = 0;
  const int N = 30000;
  for (int I = 0; I < N; ++I)
    Sum += Gen.nextThinkSec();
  EXPECT_NEAR(Sum / N / Config.MeanThinkSec, 1.0, 0.05);
}

TEST(LoadGeneratorTest, NamesRoundTrip) {
  for (ArrivalProcess Process :
       {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
        ArrivalProcess::ClosedLoop})
    EXPECT_EQ(arrivalProcessFromName(arrivalProcessName(Process)), Process);
  EXPECT_FALSE(arrivalProcessFromName("warp-drive").has_value());
}
