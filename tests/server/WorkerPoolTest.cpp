//===- tests/server/WorkerPoolTest.cpp - Scheduler & queueing tests -------===//

#include "server/WorkerPool.h"

#include "support/Random.h"
#include "support/Stats.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

using namespace ddm;

namespace {

/// Drives an M/M/c-style run through the pool: Poisson arrivals at
/// \p LambdaPerSec, exponential service with mean \p MeanServiceSec, unit
/// progress rate (no contention coupling). Returns aggregate stats.
struct QueueRun {
  uint64_t Offered = 0;
  uint64_t Completed = 0;
  uint64_t Dropped = 0;
  RunningStat WaitSec;
  RunningStat SojournSec;
};

QueueRun runMmc(unsigned Workers, size_t QueueCap, QueuePolicy Policy,
                double LambdaPerSec, double MeanServiceSec, unsigned N,
                uint64_t Seed) {
  WorkerPool Pool(Workers, QueueCap, Policy,
                  [](unsigned, unsigned) { return 1.0; });
  Rng R(Seed);
  auto Exp = [&R](double Mean) {
    double U = R.nextDouble();
    if (U <= 0.0)
      U = 0x1.0p-53;
    return -std::log(U) * Mean;
  };

  QueueRun Run;
  double NextArrival = Exp(1.0 / LambdaPerSec);
  uint64_t Remaining = N;
  uint64_t Id = 0;
  while (Remaining > 0 || Pool.busy()) {
    double NextCompletion = Pool.nextCompletionSec();
    if (Remaining > 0 && NextArrival <= NextCompletion) {
      Request Req;
      Req.Id = Id++;
      Req.ArrivalSec = NextArrival;
      Req.WorkSec = Exp(MeanServiceSec);
      ++Run.Offered;
      if (!Pool.offer(Req))
        ++Run.Dropped;
      --Remaining;
      NextArrival += Exp(1.0 / LambdaPerSec);
    } else {
      Completion Done = Pool.completeNext();
      ++Run.Completed;
      Run.WaitSec.add(Done.waitSec());
      Run.SojournSec.add(Done.sojournSec());
    }
  }
  return Run;
}

} // namespace

TEST(WorkerPoolTest, ConservationOfRequests) {
  QueueRun Run = runMmc(2, 8, QueuePolicy::Fifo, 180.0, 0.01, 20000, 3);
  EXPECT_EQ(Run.Offered, 20000u);
  EXPECT_EQ(Run.Completed + Run.Dropped, Run.Offered);
}

TEST(WorkerPoolTest, NoDropsBelowCapacityWithHeadroom) {
  // M/M/1 at rho = 0.5 with an effectively unbounded queue: nothing drops.
  QueueRun Run = runMmc(1, std::numeric_limits<size_t>::max(),
                        QueuePolicy::Fifo, 50.0, 0.01, 30000, 7);
  EXPECT_EQ(Run.Dropped, 0u);
  EXPECT_EQ(Run.Completed, 30000u);
}

TEST(WorkerPoolTest, MeanWaitGrowsWithUtilization) {
  // M/M/1 mean wait is rho/(1-rho) * s: 0.01 s at rho 0.5 vs 0.04 s at
  // rho 0.8 (s = 10 ms). Check growth and rough agreement with theory.
  QueueRun Low = runMmc(1, std::numeric_limits<size_t>::max(),
                        QueuePolicy::Fifo, 50.0, 0.01, 60000, 11);
  QueueRun High = runMmc(1, std::numeric_limits<size_t>::max(),
                         QueuePolicy::Fifo, 80.0, 0.01, 60000, 11);
  EXPECT_GT(High.WaitSec.mean(), 2.5 * Low.WaitSec.mean());
  EXPECT_NEAR(Low.WaitSec.mean(), 0.01, 0.004);
  EXPECT_NEAR(High.WaitSec.mean(), 0.04, 0.015);
}

TEST(WorkerPoolTest, OverloadWithBoundedQueueDrops) {
  // rho = 1.5: a bounded queue must shed ~1/3 of the offered load, and
  // goodput pins at the service capacity.
  QueueRun Run = runMmc(1, 16, QueuePolicy::Fifo, 150.0, 0.01, 40000, 13);
  EXPECT_GT(Run.Dropped, 0u);
  double DropRate =
      static_cast<double>(Run.Dropped) / static_cast<double>(Run.Offered);
  EXPECT_NEAR(DropRate, 1.0 / 3.0, 0.05);
}

TEST(WorkerPoolTest, SjfBeatsFifoOnMeanSojournUnderLoad) {
  QueueRun Fifo = runMmc(1, std::numeric_limits<size_t>::max(),
                         QueuePolicy::Fifo, 85.0, 0.01, 40000, 17);
  QueueRun Sjf = runMmc(1, std::numeric_limits<size_t>::max(),
                        QueuePolicy::Sjf, 85.0, 0.01, 40000, 17);
  EXPECT_LT(Sjf.SojournSec.mean(), Fifo.SojournSec.mean());
}

TEST(WorkerPoolTest, ContentionSlowdownStretchesService) {
  // Two workers, rate halves when both are busy: a pair of simultaneous
  // unit jobs must take 2 s, not 1 s.
  WorkerPool Pool(2, 4, QueuePolicy::Fifo, [](unsigned, unsigned Busy) {
    return Busy <= 1 ? 1.0 : 0.5;
  });
  Request A;
  A.Id = 0;
  A.ArrivalSec = 0.0;
  A.WorkSec = 1.0;
  Request B = A;
  B.Id = 1;
  ASSERT_TRUE(Pool.offer(A));
  ASSERT_TRUE(Pool.offer(B));
  Completion First = Pool.completeNext();
  EXPECT_NEAR(First.FinishSec, 2.0, 1e-9);
  // After the first finishes the survivor speeds back up; it had the same
  // work, so it finishes at the same instant.
  Completion Second = Pool.completeNext();
  EXPECT_NEAR(Second.FinishSec, 2.0, 1e-9);
}

TEST(WorkerPoolTest, QueueCapacityZeroRejectsWhenAllBusy) {
  WorkerPool Pool(1, 0, QueuePolicy::Fifo,
                  [](unsigned, unsigned) { return 1.0; });
  Request A;
  A.ArrivalSec = 0.0;
  A.WorkSec = 1.0;
  EXPECT_TRUE(Pool.offer(A));
  Request B = A;
  B.Id = 1;
  B.ArrivalSec = 0.5;
  EXPECT_FALSE(Pool.offer(B));
  EXPECT_EQ(Pool.dropped(), 1u);
  Completion Done = Pool.completeNext();
  EXPECT_NEAR(Done.FinishSec, 1.0, 1e-9);
}

TEST(WorkerPoolTest, BusyIntegralTracksUtilization) {
  WorkerPool Pool(2, 4, QueuePolicy::Fifo,
                  [](unsigned, unsigned) { return 1.0; });
  Request A;
  A.ArrivalSec = 0.0;
  A.WorkSec = 2.0;
  Request B;
  B.Id = 1;
  B.ArrivalSec = 1.0;
  B.WorkSec = 1.0;
  Pool.offer(A);
  Pool.offer(B);
  Pool.completeNext();
  Pool.completeNext();
  // One worker busy 0..2, the other 1..2: 3 busy-worker-seconds.
  EXPECT_NEAR(Pool.busyWorkerSeconds(), 3.0, 1e-9);
}

TEST(WorkerPoolTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(queuePolicyFromName("fifo"), QueuePolicy::Fifo);
  EXPECT_EQ(queuePolicyFromName("sjf"), QueuePolicy::Sjf);
  EXPECT_FALSE(queuePolicyFromName("lifo").has_value());
}

namespace {

Request unitRequest(uint64_t Id, double ArrivalSec, double WorkSec = 1.0) {
  Request Req;
  Req.Id = Id;
  Req.ArrivalSec = ArrivalSec;
  Req.FirstArrivalSec = ArrivalSec;
  Req.WorkSec = WorkSec;
  return Req;
}

WorkerPool::RateFn unitRate() {
  return [](unsigned, unsigned) { return 1.0; };
}

} // namespace

TEST(WorkerPoolTest, RestartEveryNPausesTheWorkerForTheDowntime) {
  WorkerRestartPolicy Restart;
  Restart.EveryNTx = 1;
  Restart.RestartCostSec = 0.5;
  WorkerPool Pool(1, 8, QueuePolicy::Fifo, unitRate(), Restart);
  ASSERT_TRUE(Pool.offer(unitRequest(0, 0.0)));
  ASSERT_TRUE(Pool.offer(unitRequest(1, 0.1))); // queued behind A

  Completion A = Pool.completeNext();
  EXPECT_NEAR(A.FinishSec, 1.0, 1e-9);
  EXPECT_EQ(Pool.restarts(), 1u);
  // B cannot start until the restart ends at 1.5; it finishes at 2.5 —
  // and nextCompletionSec() must already account for the pending
  // restart-dispatch event.
  EXPECT_NEAR(Pool.nextCompletionSec(), 2.5, 1e-9);
  Completion B = Pool.completeNext();
  EXPECT_NEAR(B.StartSec, 1.5, 1e-9);
  EXPECT_NEAR(B.FinishSec, 2.5, 1e-9);
  EXPECT_EQ(Pool.restarts(), 2u);
  EXPECT_NEAR(Pool.restartDowntimeSec(), 1.0, 1e-9);
}

TEST(WorkerPoolTest, RestartOnOomFiresOnlyAfterFailedRequests) {
  WorkerRestartPolicy Restart;
  Restart.OnOom = true;
  Restart.RestartCostSec = 0.25;
  WorkerPool Pool(1, 8, QueuePolicy::Fifo, unitRate(), Restart);

  ASSERT_TRUE(Pool.offer(unitRequest(0, 0.0)));
  Completion Ok = Pool.completeNext();
  EXPECT_FALSE(Ok.Failed);
  EXPECT_EQ(Pool.restarts(), 0u);

  Request Doomed = unitRequest(1, Ok.FinishSec);
  Doomed.WillFail = true;
  ASSERT_TRUE(Pool.offer(Doomed));
  Completion Failed = Pool.completeNext();
  EXPECT_TRUE(Failed.Failed);
  EXPECT_EQ(Pool.restarts(), 1u);
  EXPECT_NEAR(Pool.restartDowntimeSec(), 0.25, 1e-9);
}

TEST(WorkerPoolTest, WorkerHeapGrowsPerTxAndResetsOnRestart) {
  WorkerRestartPolicy Restart;
  Restart.EveryNTx = 3;
  Restart.HeapBytesPerTx = 100;
  WorkerPool Pool(1, 8, QueuePolicy::Fifo, unitRate(), Restart);
  double Now = 0.0;
  for (uint64_t I = 0; I < 5; ++I) {
    ASSERT_TRUE(Pool.offer(unitRequest(I, Now)));
    Now = Pool.completeNext().FinishSec;
  }
  // Heap peaks at 3 served requests, the restart wipes it, and two more
  // requests cannot beat the old high-water mark.
  EXPECT_EQ(Pool.restarts(), 1u);
  EXPECT_EQ(Pool.peakWorkerHeapBytes(), 300u);
}

TEST(WorkerPoolTest, RestartingWorkerDoesNotCountTowardContention) {
  // Two workers, rate halves when both are busy. With worker 1 restarting
  // (after its first job), a single in-service request must run at full
  // rate — a restarting worker is out of service, not contending.
  WorkerRestartPolicy Restart;
  Restart.EveryNTx = 1;
  Restart.RestartCostSec = 10.0;
  WorkerPool Pool(2, 8, QueuePolicy::Fifo,
                  [](unsigned, unsigned Busy) { return Busy <= 1 ? 1.0 : 0.5; },
                  Restart);
  ASSERT_TRUE(Pool.offer(unitRequest(0, 0.0, 0.5)));
  Completion First = Pool.completeNext();
  EXPECT_NEAR(First.FinishSec, 0.5, 1e-9);
  // The second request runs alone while the first worker restarts.
  ASSERT_TRUE(Pool.offer(unitRequest(1, 0.5, 1.0)));
  EXPECT_EQ(Pool.busyWorkers(), 1u);
  Completion Second = Pool.completeNext();
  EXPECT_NEAR(Second.FinishSec, 1.5, 1e-9);
}

TEST(WorkerPoolDeathTest, ArrivalTimeRegressionIsFatal) {
  WorkerPool Pool(1, 8, QueuePolicy::Fifo, unitRate());
  ASSERT_TRUE(Pool.offer(unitRequest(0, 1.0)));
  EXPECT_DEATH(Pool.offer(unitRequest(1, 0.5)),
               "arrival times must be non-decreasing");
}
