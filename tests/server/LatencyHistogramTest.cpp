//===- tests/server/LatencyHistogramTest.cpp - Histogram unit tests -------===//

#include "server/LatencyHistogram.h"

#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

using namespace ddm;

namespace {

/// Exact order statistic with the same convention the histogram documents:
/// smallest value V such that at least Fraction of the samples are <= V.
uint64_t exactPercentile(std::vector<uint64_t> Sorted, double Fraction) {
  size_t Rank = static_cast<size_t>(
      std::ceil(Fraction * static_cast<double>(Sorted.size())));
  Rank = std::clamp<size_t>(Rank, 1, Sorted.size());
  return Sorted[Rank - 1];
}

} // namespace

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram H;
  for (uint64_t V = 0; V < 64; ++V)
    H.add(V);
  EXPECT_EQ(H.count(), 64u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 63u);
  // Values below 2^SubBucketBits land in singleton buckets.
  for (uint64_t V = 0; V < 64; ++V) {
    unsigned Index = H.bucketIndex(V);
    EXPECT_EQ(H.bucketLowerBound(Index), V);
    EXPECT_EQ(H.bucketUpperBound(Index), V);
  }
}

TEST(LatencyHistogramTest, BucketBoundsContainTheirValues) {
  LatencyHistogram H;
  Rng R(7);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = R.next() >> R.nextBelow(64);
    unsigned Index = H.bucketIndex(V);
    EXPECT_LE(H.bucketLowerBound(Index), V);
    EXPECT_GE(H.bucketUpperBound(Index), V);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  LatencyHistogram H;
  uint64_t Previous = 0;
  for (uint64_t V = 1; V < (1ull << 40); V = V * 3 / 2 + 1) {
    unsigned Index = H.bucketIndex(V);
    EXPECT_GE(Index, Previous);
    Previous = Index;
  }
}

TEST(LatencyHistogramTest, PercentilesMatchSortedReference) {
  // Log-normal-ish latencies spanning ~4 decades: the shape the serving
  // simulation actually records.
  LatencyHistogram H;
  Rng R(42);
  std::vector<uint64_t> Samples;
  for (int I = 0; I < 50000; ++I) {
    uint64_t V =
        static_cast<uint64_t>(std::llround(R.nextLogNormal(8.0, 1.5)));
    Samples.push_back(V);
    H.add(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double Q : {0.50, 0.90, 0.99, 0.999}) {
    uint64_t Exact = exactPercentile(Samples, Q);
    uint64_t Estimate = H.percentile(Q);
    // Documented contract: never below the exact order statistic, above it
    // by at most the bucket's relative resolution.
    EXPECT_GE(Estimate, Exact) << "q=" << Q;
    EXPECT_LE(static_cast<double>(Estimate),
              static_cast<double>(Exact) * (1.0 + H.relativeError()) + 1.0)
        << "q=" << Q;
  }
  EXPECT_EQ(H.percentile(1.0), Samples.back());
  EXPECT_NEAR(H.mean(),
              static_cast<double>(std::accumulate(Samples.begin(),
                                                  Samples.end(), 0.0)) /
                  Samples.size(),
              1e-6);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  LatencyHistogram A, B, Combined;
  Rng R(3);
  for (int I = 0; I < 4000; ++I) {
    uint64_t V = R.nextBelow(1 << 20);
    (I % 2 ? A : B).add(V);
    Combined.add(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Combined.count());
  EXPECT_EQ(A.min(), Combined.min());
  EXPECT_EQ(A.max(), Combined.max());
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(A.percentile(Q), Combined.percentile(Q));
}

TEST(LatencyHistogramTest, EmptyHistogramIsInert) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(0.99), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
  EXPECT_TRUE(H.render().empty());
}

TEST(LatencyHistogramTest, ShardedMergeIsExactlyTheSingleHistogram) {
  // The native executor records latencies into per-thread histograms and
  // merges them after the run; the merged result must be *identical* to a
  // single histogram fed every sample — counts, extremes, mean, every
  // percentile, and even the rendered chart.
  constexpr int Shards = 8;
  std::vector<LatencyHistogram> PerThread(Shards);
  LatencyHistogram Reference;
  Rng R(77);
  for (int I = 0; I < 20000; ++I) {
    // Latency-shaped data: microseconds spanning exact and bucketed
    // ranges, with heavy weight near the low end.
    uint64_t V = R.nextBool(0.9) ? R.nextBelow(4096)
                                 : R.nextBelow(50'000'000);
    PerThread[I % Shards].add(V);
    Reference.add(V);
  }
  LatencyHistogram Merged;
  for (const LatencyHistogram &H : PerThread)
    Merged.merge(H);
  EXPECT_EQ(Merged.count(), Reference.count());
  EXPECT_EQ(Merged.min(), Reference.min());
  EXPECT_EQ(Merged.max(), Reference.max());
  // Summation order differs (per-shard partial sums), so the mean is
  // equal only up to floating-point associativity.
  EXPECT_NEAR(Merged.mean(), Reference.mean(),
              std::abs(Reference.mean()) * 1e-12);
  for (double Q = 0.0; Q <= 1.0; Q += 0.01)
    ASSERT_EQ(Merged.percentile(Q), Reference.percentile(Q)) << "q=" << Q;
  EXPECT_EQ(Merged.render(), Reference.render());
}

TEST(LatencyHistogramTest, LowPercentilesNeverUndershootTheMinimum) {
  // Regression: percentile() clamped to MaxValue only. With samples whose
  // minimum sits inside a bucketed (non-exact) range, p0 used to report
  // the first bucket's upper bound — a value above the true observed
  // minimum. The rank-1 statistic must be exactly min().
  LatencyHistogram H;
  H.add(100);
  H.add(1000);
  EXPECT_EQ(H.percentile(0.0), 100u);
  EXPECT_EQ(H.percentile(0.5), 100u); // rank 1 of 2 → exact minimum
  EXPECT_EQ(H.percentile(1.0), 1000u);
}

TEST(LatencyHistogramTest, LowPercentilesMatchSortedReference) {
  LatencyHistogram H;
  Rng R(19);
  std::vector<uint64_t> Samples;
  for (int I = 0; I < 30000; ++I) {
    // Offset so the minimum lands well inside the bucketed range.
    uint64_t V = 5000 + static_cast<uint64_t>(
                            std::llround(R.nextLogNormal(7.0, 1.2)));
    Samples.push_back(V);
    H.add(V);
  }
  std::sort(Samples.begin(), Samples.end());
  EXPECT_EQ(H.percentile(0.0), Samples.front());
  for (double Q : {0.001, 0.01, 0.05}) {
    uint64_t Exact = exactPercentile(Samples, Q);
    uint64_t Estimate = H.percentile(Q);
    EXPECT_GE(Estimate, Samples.front()) << "q=" << Q;
    EXPECT_GE(Estimate, Exact) << "q=" << Q;
    EXPECT_LE(static_cast<double>(Estimate),
              static_cast<double>(Exact) * (1.0 + H.relativeError()) + 1.0)
        << "q=" << Q;
  }
}

// The merge-resolution guard must hold in Release builds too (the benches
// that merge per-worker histograms compile with NDEBUG): mismatched
// SubBucketBits is fatal, not an assert.
TEST(LatencyHistogramDeathTest, MergeMismatchedResolutionDiesHard) {
  LatencyHistogram Coarse(4), Fine(8);
  Coarse.add(100);
  Fine.add(100);
  EXPECT_DEATH(Coarse.merge(Fine), "incompatible resolutions");
}

TEST(LatencyHistogramTest, MergePreservesWeights) {
  LatencyHistogram A, B;
  A.add(100, 3);
  B.add(100, 5);
  B.add(7, 2);
  A.merge(B);
  EXPECT_EQ(A.count(), 10u);
  EXPECT_EQ(A.min(), 7u);
  EXPECT_EQ(A.max(), 100u);
  EXPECT_DOUBLE_EQ(A.mean(), (100.0 * 8 + 7.0 * 2) / 10.0);
}
