//===- tests/server/ServingSimulatorTest.cpp - End-to-end serving tests ---===//

#include "server/ServingSimulator.h"

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

SimulationOptions tinyOptions() {
  SimulationOptions Options;
  // The bus-saturation mechanism needs a working set that spills out of
  // L2; 0.35 is the scale the experiments/ShapeTest suite establishes as
  // the smallest that preserves the paper's 8-core shapes.
  Options.Scale = 0.35;
  Options.WarmupTx = 1;
  Options.MeasureTx = 4; // per-transaction samples for the profile
  Options.Seed = 5;
  return Options;
}

/// Models are expensive to build (each runs the allocator simulator), so
/// build one per allocator once and share across tests.
const ServiceTimeModel &modelFor(AllocatorKind Kind) {
  static const ServiceTimeModel DDm =
      buildServiceTimeModel({mediaWikiReadOnly()}, AllocatorKind::DDmalloc,
                            xeonLike(), 8, tinyOptions());
  static const ServiceTimeModel Region =
      buildServiceTimeModel({mediaWikiReadOnly()}, AllocatorKind::Region,
                            xeonLike(), 8, tinyOptions());
  return Kind == AllocatorKind::Region ? Region : DDm;
}

ServingConfig baseConfig(double Rps) {
  ServingConfig Config;
  Config.Load.RatePerSec = Rps;
  Config.Load.Seed = 0xabc;
  Config.QueueCapacity = 256;
  Config.DurationTx = 1500;
  return Config;
}

} // namespace

TEST(ServiceTimeModelTest, SlowdownIsMonotoneFromOne) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ASSERT_EQ(Model.Workers, 8u);
  ASSERT_EQ(Model.Workloads.size(), 1u);
  const auto &W = Model.Workloads[0];
  EXPECT_GT(W.BaseServiceSec, 0.0);
  EXPECT_DOUBLE_EQ(W.Slowdown.front(), 1.0);
  for (size_t I = 1; I < W.Slowdown.size(); ++I)
    EXPECT_GE(W.Slowdown[I], W.Slowdown[I - 1]);
}

TEST(ServiceTimeModelTest, RelativeWeightsAverageToOne) {
  const auto &W = modelFor(AllocatorKind::DDmalloc).Workloads[0];
  ASSERT_FALSE(W.RelativeWeights.empty());
  double Sum = 0;
  for (double X : W.RelativeWeights) {
    EXPECT_GT(X, 0.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / static_cast<double>(W.RelativeWeights.size()), 1.0, 1e-9);
}

TEST(ServiceTimeModelTest, RegionSaturatesTheBusHarderThanDDmalloc) {
  // The paper's 8-core Xeon result, seen from the serving layer: the
  // region allocator's extra bus traffic means a fuller pool slows its
  // requests down more, and its saturation capacity lands lower.
  const ServiceTimeModel &Region = modelFor(AllocatorKind::Region);
  const ServiceTimeModel &DDm = modelFor(AllocatorKind::DDmalloc);
  EXPECT_GT(Region.Workloads[0].Slowdown.back(),
            DDm.Workloads[0].Slowdown.back());
  EXPECT_LT(Region.capacityRps(), DDm.capacityRps());
}

TEST(ServingSimulatorTest, DeterministicGivenSeed) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config = baseConfig(0.8 * Model.capacityRps());
  ServingMetrics A = runServing(Model, Config);
  ServingMetrics B = runServing(Model, Config);
  EXPECT_EQ(A.Completed, B.Completed);
  EXPECT_EQ(A.Dropped, B.Dropped);
  EXPECT_EQ(A.LatencyUs.percentile(0.99), B.LatencyUs.percentile(0.99));
  EXPECT_DOUBLE_EQ(A.GoodputRps, B.GoodputRps);
}

TEST(ServingSimulatorTest, BelowCapacityNothingDropsAndGoodputTracksOffered) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config = baseConfig(0.5 * Model.capacityRps());
  ServingMetrics M = runServing(Model, Config);
  EXPECT_EQ(M.Dropped, 0u);
  EXPECT_EQ(M.Completed, Config.DurationTx);
  EXPECT_NEAR(M.GoodputRps / M.OfferedRps, 1.0, 0.1);
  // Little's law sanity: utilization tracks offered/capacity.
  EXPECT_NEAR(M.Utilization, 0.5, 0.15);
}

TEST(ServingSimulatorTest, OverloadShedsAndGoodputPinsAtCapacity) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config = baseConfig(1.4 * Model.capacityRps());
  Config.QueueCapacity = 32;
  ServingMetrics M = runServing(Model, Config);
  EXPECT_GT(M.Dropped, 0u);
  EXPECT_LT(M.GoodputRps, M.OfferedRps);
  EXPECT_NEAR(M.GoodputRps / Model.capacityRps(), 1.0, 0.15);
  // The bounded queue keeps the tail finite but saturated.
  EXPECT_GT(M.p99Ms(), 1.5 * Model.Workloads[0].BaseServiceSec * 1e3);
}

TEST(ServingSimulatorTest, RegionTailBlowsUpFirstNearSaturation) {
  // The acceptance-criterion shape in miniature: at an offered load
  // DDmalloc still absorbs (95% of its capacity), the region allocator -
  // whose bus-limited capacity is lower - explodes in p99 and drops.
  const ServiceTimeModel &Region = modelFor(AllocatorKind::Region);
  const ServiceTimeModel &DDm = modelFor(AllocatorKind::DDmalloc);
  double Offered = 0.95 * DDm.capacityRps();
  ServingMetrics MRegion = runServing(Region, baseConfig(Offered));
  ServingMetrics MDDm = runServing(DDm, baseConfig(Offered));
  EXPECT_GT(MRegion.p99Ms(), 2.0 * MDDm.p99Ms());
  EXPECT_GE(MRegion.dropRate(), MDDm.dropRate());
}

TEST(ServingSimulatorTest, ClosedLoopSelfLimits) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config;
  Config.Load.Process = ArrivalProcess::ClosedLoop;
  Config.Load.Clients = 4;
  Config.Load.MeanThinkSec = 2.0 * Model.Workloads[0].BaseServiceSec;
  Config.Load.Seed = 0xc105ed;
  Config.QueueCapacity = 64;
  Config.DurationTx = 800;
  ServingMetrics M = runServing(Model, Config);
  EXPECT_EQ(M.Completed, Config.DurationTx);
  EXPECT_EQ(M.Dropped, 0u); // population 4 never overflows a 64-deep queue
  // At most Clients requests are ever in flight.
  EXPECT_LE(M.QueueDepthAtArrival.max(), 4.0);
  EXPECT_LE(M.MeanBusyWorkers, 4.0 + 1e-9);
}

namespace {

/// Arms the worker_heap fault site with \p Spec for the duration of one
/// serving run; models must be built before construction (profiling stays
/// fault-free).
class ArmedFaults {
public:
  explicit ArmedFaults(const std::string &Spec) {
    FaultPlan Plan;
    std::string Error;
    EXPECT_TRUE(FaultPlan::parse(Spec, Plan, Error)) << Error;
    FaultInjector::instance().arm(Plan);
  }
  ~ArmedFaults() { FaultInjector::instance().disarm(); }
};

} // namespace

TEST(ServingSimulatorTest, ClosedLoopRetriesFailuresAndCountersPartition) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config;
  Config.Load.Process = ArrivalProcess::ClosedLoop;
  Config.Load.Clients = 8;
  Config.Load.MeanThinkSec = Model.Workloads[0].BaseServiceSec;
  Config.Load.Seed = 0xfa11;
  Config.QueueCapacity = 64;
  Config.DurationTx = 300;
  Config.MaxAttempts = 3;
  Config.RetryBackoffSec = 0.01;

  auto Run = [&] {
    ArmedFaults Faults("seed=3,worker_heap:p=0.05");
    return runServing(Model, Config);
  };
  ServingMetrics M = Run();
  EXPECT_TRUE(M.countersConsistent())
      << M.Offered << " != " << M.Completed << "+" << M.Retried << "+"
      << M.Failed << "+" << M.Dropped << "+" << M.Unfinished;
  EXPECT_GT(M.Retried, 0u);
  // The loop runs to its target: every counted request either completed
  // or exhausted its attempts.
  EXPECT_EQ(M.Completed + M.Failed, Config.DurationTx);
  // p = 0.05 with 3 attempts: permanent failures (p^3) are rare but
  // retries are not; completions dominate.
  EXPECT_GT(M.Completed, M.Failed * 10);

  // The fault plan's seed makes the whole run reproducible.
  ServingMetrics N = Run();
  EXPECT_EQ(M.Completed, N.Completed);
  EXPECT_EQ(M.Retried, N.Retried);
  EXPECT_EQ(M.Failed, N.Failed);
  EXPECT_EQ(M.LatencyUs.percentile(0.99), N.LatencyUs.percentile(0.99));
}

TEST(ServingSimulatorTest, OpenLoopFailuresAreTerminal) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Config = baseConfig(0.6 * Model.capacityRps());
  Config.DurationTx = 600;
  ArmedFaults Faults("seed=5,worker_heap:p=0.04");
  ServingMetrics M = runServing(Model, Config);
  EXPECT_TRUE(M.countersConsistent());
  EXPECT_GT(M.Failed, 0u);
  EXPECT_EQ(M.Retried, 0u);   // open-loop clients never retry
  EXPECT_EQ(M.Unfinished, 0u); // the pool drains fully
  EXPECT_EQ(M.Completed + M.Failed, Config.DurationTx);
}

TEST(ServingSimulatorTest, RestartPolicySurfacesInMetricsAndSlowsTheRun) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Base = baseConfig(0.7 * Model.capacityRps());
  Base.DurationTx = 600;
  ServingMetrics NoRestart = runServing(Model, Base);
  EXPECT_EQ(NoRestart.Restarts, 0u);
  EXPECT_EQ(NoRestart.PeakWorkerHeapBytes, 0u);

  ServingConfig WithRestart = Base;
  WithRestart.Restart.EveryNTx = 25;
  WithRestart.Restart.RestartCostSec = 0.02;
  WithRestart.Restart.HeapBytesPerTx = 1 << 20;
  ServingMetrics M = runServing(Model, WithRestart);
  EXPECT_GT(M.Restarts, 0u);
  EXPECT_NEAR(M.RestartDowntimeSec,
              static_cast<double>(M.Restarts) * 0.02, 1e-9);
  // Heap peaks at one restart period's worth of litter.
  EXPECT_EQ(M.PeakWorkerHeapBytes, 25u << 20);
  // Paying downtime can only stretch the run.
  EXPECT_GE(M.MakespanSec, NoRestart.MakespanSec);
  EXPECT_TRUE(M.countersConsistent());
}

TEST(ServingSimulatorTest, SjfReordersButConservesRequests) {
  const ServiceTimeModel &Model = modelFor(AllocatorKind::DDmalloc);
  ServingConfig Fifo = baseConfig(1.05 * Model.capacityRps());
  ServingConfig Sjf = Fifo;
  Sjf.Policy = QueuePolicy::Sjf;
  ServingMetrics MFifo = runServing(Model, Fifo);
  ServingMetrics MSjf = runServing(Model, Sjf);
  EXPECT_EQ(MFifo.Offered, MSjf.Offered);
  EXPECT_EQ(MFifo.Completed + MFifo.Dropped, MFifo.Offered);
  EXPECT_EQ(MSjf.Completed + MSjf.Dropped, MSjf.Offered);
  // Shortest-job-first cannot worsen the median under backlog.
  EXPECT_LE(MSjf.p50Ms(), MFifo.p50Ms() * 1.05);
}
