//===- tests/workload/TraceGeneratorTest.cpp - Workload generator tests ---===//

#include "workload/TraceGenerator.h"
#include "workload/WorkloadSpec.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

using namespace ddm;

namespace {

/// Validates the event protocol: ids are allocated before use, never freed
/// twice, sizes tracked consistently.
class CheckingExecutor : public TxExecutor {
public:
  void onAlloc(uint32_t Id, size_t Size) override {
    ASSERT_EQ(Live.count(Id), 0u) << "id reused while live";
    ASSERT_GT(Size, 0u);
    Live[Id] = Size;
    ++Allocs;
  }
  void onFree(uint32_t Id) override {
    ASSERT_EQ(Live.count(Id), 1u) << "free of unknown id";
    Live.erase(Id);
    ++Frees;
  }
  void onRealloc(uint32_t Id, size_t OldSize, size_t NewSize) override {
    auto It = Live.find(Id);
    ASSERT_NE(It, Live.end()) << "realloc of unknown id";
    ASSERT_EQ(It->second, OldSize) << "old size mismatch";
    It->second = NewSize;
    ++Reallocs;
  }
  void onTouch(uint32_t Id, bool) override {
    ASSERT_EQ(Live.count(Id), 1u) << "touch of dead object";
    ++Touches;
  }
  void onWork(uint64_t Instructions) override { Work += Instructions; }
  void onStateTouch(uint64_t Offset, bool) override {
    StateTouches.push_back(Offset);
  }

  std::unordered_map<uint32_t, size_t> Live;
  uint64_t Allocs = 0, Frees = 0, Reallocs = 0, Touches = 0, Work = 0;
  std::vector<uint64_t> StateTouches;
};

} // namespace

TEST(TraceGeneratorTest, ProtocolIsConsistent) {
  WorkloadSpec W = mediaWikiReadOnly();
  Rng R(1);
  CheckingExecutor Executor;
  TraceStats Stats = runTransaction(W, 0.1, R, Executor);
  EXPECT_EQ(Stats.Mallocs, Executor.Allocs);
  EXPECT_EQ(Stats.Frees, Executor.Frees);
  EXPECT_EQ(Stats.Reallocs, Executor.Reallocs);
  EXPECT_EQ(Stats.ObjectTouches, Executor.Touches);
  EXPECT_EQ(Stats.WorkInstructions, Executor.Work);
}

TEST(TraceGeneratorTest, ScaleControlsCallCounts) {
  WorkloadSpec W = mediaWikiReadOnly();
  Rng R(2);
  CheckingExecutor Executor;
  TraceStats Full = runTransaction(W, 1.0, R, Executor);
  EXPECT_EQ(Full.Mallocs, W.MallocCalls);
  CheckingExecutor Executor2;
  Rng R2(2);
  TraceStats Half = runTransaction(W, 0.5, R2, Executor2);
  EXPECT_EQ(Half.Mallocs, W.MallocCalls / 2 + (W.MallocCalls & 1));
}

TEST(TraceGeneratorTest, Table3StatisticsMatchWithinTolerance) {
  // The core of the Table 3 reproduction: generated counts and mean sizes
  // match the paper's numbers.
  for (const WorkloadSpec &W : phpWorkloads()) {
    Rng R(3);
    CheckingExecutor Executor;
    TraceStats Total;
    for (int I = 0; I < 3; ++I) {
      // Object ids are transaction-scoped: drop last transaction's
      // leftovers like the runtime's freeAll does.
      Executor.Live.clear();
      TraceStats S = runTransaction(W, 1.0, R, Executor);
      Total.Mallocs += S.Mallocs;
      Total.Frees += S.Frees;
      Total.Reallocs += S.Reallocs;
      Total.AllocatedBytes += S.AllocatedBytes;
    }
    double N = 3.0;
    EXPECT_EQ(Total.Mallocs / 3, W.MallocCalls) << W.Name;
    EXPECT_NEAR(Total.Frees / N, static_cast<double>(W.FreeCalls),
                0.02 * W.FreeCalls)
        << W.Name;
    EXPECT_NEAR(Total.Reallocs / N, static_cast<double>(W.ReallocCalls),
                0.15 * W.ReallocCalls + 3.0)
        << W.Name;
    double MeanSize = static_cast<double>(Total.AllocatedBytes) /
                      static_cast<double>(Total.Mallocs);
    EXPECT_NEAR(MeanSize, W.MeanAllocBytes, 0.08 * W.MeanAllocBytes) << W.Name;
  }
}

TEST(TraceGeneratorTest, DeterministicForSameSeed) {
  WorkloadSpec W = phpBb();
  CheckingExecutor A, B;
  Rng Ra(17), Rb(17);
  TraceStats Sa = runTransaction(W, 0.3, Ra, A);
  TraceStats Sb = runTransaction(W, 0.3, Rb, B);
  EXPECT_EQ(Sa.Frees, Sb.Frees);
  EXPECT_EQ(Sa.AllocatedBytes, Sb.AllocatedBytes);
  EXPECT_EQ(Sa.Reallocs, Sb.Reallocs);
  EXPECT_EQ(A.StateTouches, B.StateTouches);
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  WorkloadSpec W = phpBb();
  CheckingExecutor A, B;
  Rng Ra(1), Rb(2);
  TraceStats Sa = runTransaction(W, 0.3, Ra, A);
  TraceStats Sb = runTransaction(W, 0.3, Rb, B);
  EXPECT_NE(Sa.AllocatedBytes, Sb.AllocatedBytes);
}

TEST(TraceGeneratorTest, UnfreedObjectsRemainForFreeAll) {
  // The paper: 7.9%-27.3% of objects are never freed per-object and only
  // reclaimed by freeAll.
  WorkloadSpec W = mediaWikiReadOnly();
  Rng R(4);
  CheckingExecutor Executor;
  TraceStats Stats = runTransaction(W, 0.5, R, Executor);
  EXPECT_GT(Executor.Live.size(), 0u);
  double UnfreedFraction =
      static_cast<double>(Stats.Mallocs - Stats.Frees) / Stats.Mallocs;
  EXPECT_GT(UnfreedFraction, 0.079 * 0.7);
  EXPECT_LT(UnfreedFraction, 0.273 * 1.3);
}

TEST(TraceGeneratorTest, ObjectsDieYoung) {
  // Track lifetimes: the bulk of freed objects die within a few times the
  // configured mean lifetime.
  WorkloadSpec W = mediaWikiReadOnly();

  class LifetimeExecutor : public CheckingExecutor {
  public:
    void onAlloc(uint32_t Id, size_t Size) override {
      CheckingExecutor::onAlloc(Id, Size);
      BornAt[Id] = Clock++;
    }
    void onFree(uint32_t Id) override {
      Lifetimes.push_back(Clock - BornAt[Id]);
      CheckingExecutor::onFree(Id);
    }
    std::unordered_map<uint32_t, uint64_t> BornAt;
    std::vector<uint64_t> Lifetimes;
    uint64_t Clock = 0;
  } Executor;

  Rng R(5);
  runTransaction(W, 0.2, R, Executor);
  ASSERT_GT(Executor.Lifetimes.size(), 1000u);
  uint64_t Young = 0;
  for (uint64_t L : Executor.Lifetimes)
    if (L <= 4 * static_cast<uint64_t>(W.MeanLifetimeSteps))
      ++Young;
  EXPECT_GT(static_cast<double>(Young) / Executor.Lifetimes.size(), 0.9);
}

TEST(TraceGeneratorTest, StateTouchesAreSkewed) {
  WorkloadSpec W = mediaWikiReadOnly();
  Rng R(6);
  CheckingExecutor Executor;
  runTransaction(W, 0.2, R, Executor);
  ASSERT_GT(Executor.StateTouches.size(), 1000u);
  uint64_t Hot = 0;
  for (uint64_t Offset : Executor.StateTouches) {
    ASSERT_LT(Offset, W.AppStateBytes);
    if (Offset < W.StateHotBytes)
      ++Hot;
  }
  double HotFraction = static_cast<double>(Hot) / Executor.StateTouches.size();
  EXPECT_GT(HotFraction, W.StateHotFraction * 0.9);
}

TEST(TraceGeneratorTest, LargeObjectsAppearAtConfiguredRate) {
  WorkloadSpec W = mediaWikiReadOnly();
  W.LargeObjectRate = 0.01; // crank it up to make the test fast
  class SizeExecutor : public CheckingExecutor {
  public:
    void onAlloc(uint32_t Id, size_t Size) override {
      CheckingExecutor::onAlloc(Id, Size);
      if (Size >= 20 * 1024)
        ++LargeCount;
    }
    uint64_t LargeCount = 0;
  } Executor;
  Rng R(7);
  TraceStats Stats = runTransaction(W, 0.3, R, Executor);
  double Rate = static_cast<double>(Executor.LargeCount) / Stats.Mallocs;
  EXPECT_NEAR(Rate, 0.01, 0.004);
}

TEST(WorkloadSpecTest, LookupByName) {
  EXPECT_NE(findWorkload("mediawiki-read"), nullptr);
  EXPECT_NE(findWorkload("rails"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
  EXPECT_EQ(workloadNames().size(), 8u);
  EXPECT_EQ(phpWorkloads().size(), 7u);
}

TEST(WorkloadSpecTest, FreeFractionsMatchPaperRange) {
  // Paper: the number of free calls is 7.9% to 27.3% less than mallocs.
  for (const WorkloadSpec &W : phpWorkloads()) {
    double Unfreed = 1.0 - W.perObjectFreeFraction();
    // The paper rounds to one decimal (7.9%, 27.3%); allow that rounding.
    EXPECT_GE(Unfreed, 0.0785) << W.Name;
    EXPECT_LE(Unfreed, 0.2735) << W.Name;
  }
}
