//===- tests/workload/WorkloadParamTest.cpp - Per-workload sweeps ---------===//
///
/// \file
/// Parameterized Table-3 validation and protocol checks, one test instance
/// per (workload, seed).
///
//===----------------------------------------------------------------------===//

#include "workload/TraceGenerator.h"
#include "workload/WorkloadSpec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

using namespace ddm;

namespace {

class WorkloadParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
protected:
  const WorkloadSpec &workload() const {
    const WorkloadSpec *W = findWorkload(std::get<0>(GetParam()));
    EXPECT_NE(W, nullptr);
    return *W;
  }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

class CountingExecutor : public TxExecutor {
public:
  void onAlloc(uint32_t Id, size_t Size) override {
    Live[Id] = Size;
    TotalBytes += Size;
    ++Allocs;
  }
  void onFree(uint32_t Id) override {
    ASSERT_EQ(Live.erase(Id), 1u);
    ++Frees;
  }
  void onRealloc(uint32_t Id, size_t OldSize, size_t NewSize) override {
    auto It = Live.find(Id);
    ASSERT_NE(It, Live.end());
    ASSERT_EQ(It->second, OldSize);
    It->second = NewSize;
  }
  void onTouch(uint32_t Id, bool) override {
    ASSERT_EQ(Live.count(Id), 1u);
  }
  void onWork(uint64_t) override {}
  void onStateTouch(uint64_t, bool) override {}

  std::unordered_map<uint32_t, size_t> Live;
  uint64_t Allocs = 0, Frees = 0, TotalBytes = 0;
};

} // namespace

TEST_P(WorkloadParamTest, CallCountsMatchTable3) {
  Rng R(seed());
  CountingExecutor Executor;
  TraceStats Stats = runTransaction(workload(), 1.0, R, Executor);
  EXPECT_EQ(Stats.Mallocs, workload().MallocCalls);
  EXPECT_NEAR(static_cast<double>(Stats.Frees),
              static_cast<double>(workload().FreeCalls),
              0.03 * workload().FreeCalls + 5.0);
}

TEST_P(WorkloadParamTest, MeanSizeMatchesTable3) {
  Rng R(seed());
  CountingExecutor Executor;
  TraceStats Stats = runTransaction(workload(), 1.0, R, Executor);
  // Tolerance includes a sampling term: SPECweb has only ~3k allocations
  // per transaction and a heavy-tailed size distribution.
  double Tolerance = workload().MeanAllocBytes *
                     (0.06 + 8.0 / std::sqrt(static_cast<double>(Stats.Mallocs)));
  EXPECT_NEAR(Stats.meanAllocBytes(), workload().MeanAllocBytes, Tolerance);
}

TEST_P(WorkloadParamTest, LeftoversAreTheUnfreedFraction) {
  Rng R(seed());
  CountingExecutor Executor;
  TraceStats Stats = runTransaction(workload(), 1.0, R, Executor);
  EXPECT_EQ(Executor.Live.size(), Stats.Mallocs - Stats.Frees);
}

TEST_P(WorkloadParamTest, ScaledRunsKeepRatios) {
  Rng R(seed());
  CountingExecutor Executor;
  TraceStats Stats = runTransaction(workload(), 0.25, R, Executor);
  double FreeRatio =
      static_cast<double>(Stats.Frees) / static_cast<double>(Stats.Mallocs);
  EXPECT_NEAR(FreeRatio, workload().perObjectFreeFraction(), 0.05);
  double Tolerance = workload().MeanAllocBytes *
                     (0.08 + 8.0 / std::sqrt(static_cast<double>(Stats.Mallocs)));
  EXPECT_NEAR(Stats.meanAllocBytes(), workload().MeanAllocBytes, Tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values(11u, 23u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>
           &Info) {
      std::string Name = std::get<0>(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_seed" + std::to_string(std::get<1>(Info.param));
    });
