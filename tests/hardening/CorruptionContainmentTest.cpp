//===- tests/hardening/CorruptionContainmentTest.cpp - Abort one tx only --===//
///
/// The containment contract (DESIGN.md section 14): under --harden a
/// detected scribble follows the OOM playbook — the transaction is
/// abandoned, its objects are rolled back to zero live bytes, the outcome
/// carries the structured CorruptionReport, and the same heap keeps
/// serving clean transactions. Driven with the corruption-injecting fault
/// sites for every allocator in the zoo.
///
//===----------------------------------------------------------------------===//

#include "hardening/Hardening.h"
#include "runtime/TransactionRuntime.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace ddm;

namespace {

class CorruptionContainmentTest : public testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }

  static void arm(const std::string &Spec) {
    FaultPlan Plan;
    std::string Error;
    ASSERT_TRUE(FaultPlan::parse(Spec, Plan, Error)) << Error;
    FaultInjector::instance().arm(Plan);
  }

  static RuntimeConfig configFor(AllocatorKind Kind) {
    RuntimeConfig Config;
    Config.Kind = Kind;
    Config.UseBulkFree = allocatorSupportsBulkFree(Kind);
    Config.LeakFraction = 0.0;
    Config.Scale = 0.05;
    Config.AllocOptions.Hardening.Enabled = true;
    return Config;
  }
};

TEST_F(CorruptionContainmentTest, EveryAllocatorAbortsOneTxAndStaysUsable) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    const char *Name = allocatorKindName(Kind);
    SCOPED_TRACE(Name);
    // The 25th hardened free of the first transaction gets its red zone
    // scribbled; the free-time verification must catch it.
    arm("seed=1,heap_scribble_overflow:every=25");
    TransactionRuntime Runtime(phpBb(), configFor(Kind));
    ASSERT_NE(asHardened(&Runtime.allocator()), nullptr);
    EXPECT_EQ(Runtime.executeTransaction(), TxStatus::HeapCorruption);

    const TxOutcome &Outcome = Runtime.lastOutcome();
    EXPECT_EQ(Outcome.Status, TxStatus::HeapCorruption);
    EXPECT_EQ(Outcome.AllocatorName, Name);
    EXPECT_EQ(Outcome.Corruption.Allocator, Name);
    EXPECT_EQ(Outcome.Corruption.Kind, CorruptionKind::RedzoneOverflow);
    EXPECT_FALSE(Outcome.Corruption.describe().empty());

    // Containment: only that transaction died, and the rollback emptied
    // the heap (quarantined bytes are excluded from live bytes).
    EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
    EXPECT_EQ(Runtime.metrics().CorruptionAborts, 1u);
    EXPECT_EQ(Runtime.metrics().OomAborts, 0u);
    EXPECT_EQ(Runtime.metrics().Transactions, 0u);

    // The same runtime (same heap) serves cleanly afterwards.
    FaultInjector::instance().disarm();
    EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
    EXPECT_EQ(Runtime.lastOutcome().Status, TxStatus::Ok);
    EXPECT_EQ(Runtime.metrics().Transactions, 1u);
    EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
  }
}

TEST_F(CorruptionContainmentTest, DirectDriveAbortNoOpsUntilTxEnd) {
  // After the detection every later event must be a safe no-op, exactly
  // like an OOM abort: the generator's stream winds down without touching
  // dead state, then the boundary rolls back.
  arm("seed=1,heap_scribble_overflow:p=1");
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::Glibc));
  ASSERT_FALSE(Runtime.txAborted());
  Runtime.onAlloc(0, 64);
  Runtime.onAlloc(1, 64);
  Runtime.onFree(0); // the injected scribble fires on the first free
  EXPECT_TRUE(Runtime.txAborted());
  Runtime.onTouch(1, true);
  Runtime.onRealloc(1, 64, 128);
  Runtime.onFree(1);
  Runtime.onWork(100);
  EXPECT_EQ(Runtime.completeTransaction(TraceStats()),
            TxStatus::HeapCorruption);
  EXPECT_EQ(Runtime.allocator().stats().UsableBytesLive, 0u);
  EXPECT_EQ(Runtime.metrics().CorruptionAborts, 1u);
  EXPECT_FALSE(Runtime.txAborted());
}

TEST_F(CorruptionContainmentTest, AbortedTxContributesNothingToAverages) {
  arm("seed=1,heap_scribble_overflow:every=10");
  TransactionRuntime Runtime(phpBb(), configFor(AllocatorKind::DDmalloc));
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::HeapCorruption);
  EXPECT_EQ(Runtime.metrics().TotalTrace.Mallocs, 0u);
  EXPECT_EQ(Runtime.metrics().ConsumptionBytes.count(), 0u);

  FaultInjector::instance().disarm();
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
  EXPECT_GT(Runtime.metrics().TotalTrace.Mallocs, 0u);
  EXPECT_EQ(Runtime.metrics().ConsumptionBytes.count(), 1u);
}

TEST_F(CorruptionContainmentTest, UnhardenedRuntimeIgnoresTheScribbleSites) {
  // Without --harden there is no hardened free path, so the corruption
  // sites are never consulted: the run behaves exactly like a clean one.
  arm("seed=1,heap_scribble_overflow:p=1,heap_scribble_uaf:p=1,"
      "heap_double_free:p=1");
  RuntimeConfig Config = configFor(AllocatorKind::Glibc);
  Config.AllocOptions.Hardening.Enabled = false;
  TransactionRuntime Runtime(phpBb(), Config);
  ASSERT_EQ(asHardened(&Runtime.allocator()), nullptr);
  EXPECT_EQ(Runtime.executeTransaction(), TxStatus::Ok);
  EXPECT_EQ(Runtime.metrics().CorruptionAborts, 0u);
  EXPECT_EQ(
      FaultInjector::instance().counters(FaultSite::HeapScribbleOverflow).Hits,
      0u);
}

} // namespace
