//===- tests/hardening/FatalFlushTest.cpp - Last-gasp trace flush ---------===//
///
/// fatal() must not take buffered trace data down with the process: every
/// open TraceWriter registers a last-gasp hook that flushes its partial
/// block — and, if the writer was already failing, truncates back to the
/// last CRC-valid frame — before abort(). Each death test crashes a child
/// mid-recording, then the parent reads the child's file back and checks
/// it is a complete, CRC-clean trace.
///
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ddm;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "ddm_fatal_" + Name + TraceFileSuffix;
}

TraceEvent event(TraceOp Op, uint32_t Id = 0, uint64_t Size = 0) {
  TraceEvent E;
  E.Op = Op;
  E.Id = Id;
  E.Size = Size;
  return E;
}

/// 2000 alloc/free pairs plus the transaction end: 4001 events.
constexpr uint64_t EventsPerTx = 4001;

void appendOneTx(TraceWriter &Writer) {
  for (uint32_t Id = 0; Id < 2000; ++Id)
    Writer.append(event(TraceOp::Alloc, Id, 64 + (Id % 128)));
  for (uint32_t Id = 0; Id < 2000; ++Id)
    Writer.append(event(TraceOp::Free, Id));
  Writer.append(event(TraceOp::EndTx));
}

/// Streams the whole file through a TraceReader; returns the number of
/// events before a clean end, failing the test on any reader error.
uint64_t countEventsExpectClean(const std::string &Path) {
  TraceReader Reader;
  EXPECT_TRUE(Reader.open(Path).ok()) << Reader.status().describe();
  TraceEvent E;
  uint64_t Count = 0;
  TraceReader::Next N;
  while ((N = Reader.next(E)) == TraceReader::Next::Event)
    ++Count;
  EXPECT_EQ(N, TraceReader::Next::End) << Reader.status().describe();
  return Count;
}

using FatalFlushDeathTest = ::testing::Test;

TEST(FatalFlushDeathTest, FatalFlushesTheBufferedBlock) {
  // One transaction's events fit inside a single 64 KiB block, so at the
  // moment of death nothing but the meta frame has reached the disk; the
  // hook's flush is the only reason the events survive.
  std::string Path = tempPath("buffered");
  EXPECT_DEATH(
      {
        TraceWriter Writer;
        if (!Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok())
          std::abort();
        appendOneTx(Writer);
        fatal("boom");
      },
      "ddmalloc fatal error: boom");
  EXPECT_EQ(countEventsExpectClean(Path), EventsPerTx);
  std::remove(Path.c_str());
}

TEST(FatalFlushDeathTest, FatalOnAFailedWriterLeavesAValidPrefix) {
  // A writer that already hit ENOSPC holds a torn tail; the hook must
  // truncate back to the last fully-flushed frame so the survivors read
  // cleanly.
  std::string Path = tempPath("torn");
  EXPECT_DEATH(
      {
        TraceWriter Writer;
        if (!Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok())
          std::abort();
        Writer.limitBytesForTest(150 * 1024);
        for (int Tx = 0; Tx < 100; ++Tx)
          appendOneTx(Writer);
        fatal("boom");
      },
      "ddmalloc fatal error: boom");
  // Frames cut at block boundaries, not transaction boundaries: the
  // prefix may end mid-transaction, but it must read back CRC-clean
  // (countEventsExpectClean fails the test on any reader error).
  uint64_t Events = countEventsExpectClean(Path);
  EXPECT_GT(Events, 0u);
  EXPECT_LT(Events, 100 * EventsPerTx) << "the failure really cut the tail";
  std::remove(Path.c_str());
}

TEST(FatalFlushDeathTest, FinishedWriterIsLeftAloneByFatal) {
  // finish() unregisters the hook: a later fatal() must not touch (or
  // double-close) the completed file.
  std::string Path = tempPath("finished");
  EXPECT_DEATH(
      {
        TraceWriter Writer;
        if (!Writer.open(Path, TraceMeta{"synthetic", 1.0, 3}).ok())
          std::abort();
        appendOneTx(Writer);
        if (!Writer.finish().ok())
          std::abort();
        fatal("boom");
      },
      "ddmalloc fatal error: boom");
  EXPECT_EQ(countEventsExpectClean(Path), EventsPerTx);
  std::remove(Path.c_str());
}

} // namespace
