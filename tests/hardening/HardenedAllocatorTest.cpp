//===- tests/hardening/HardenedAllocatorTest.cpp - Wrapper mechanics ------===//
///
/// The corruption-detecting wrapper's contract, pinned at the unit level:
/// the factory wraps (and unwraps) on the Hardening.Enabled switch, stats
/// count user bytes only (quarantined bytes are *not* live bytes — the
/// OOM rollback invariant and fig09 depend on it), and each of the four
/// misuse classes — overflow, use-after-free, double free, foreign
/// pointer — produces exactly one precisely-attributed CorruptionReport.
/// Without a handler, detection is fatal; the death tests pin that
/// boundary and the diagnostic format.
///
//===----------------------------------------------------------------------===//

#include "core/AllocatorFactory.h"
#include "hardening/Hardening.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

using namespace ddm;

namespace {

AllocatorOptions hardenedOptions() {
  AllocatorOptions Options;
  Options.Hardening.Enabled = true;
  return Options;
}

/// A hardened glibc-model heap plus a recorder for its reports.
struct Fixture {
  std::unique_ptr<TxAllocator> Alloc;
  HardenedAllocator *H = nullptr;
  std::vector<CorruptionReport> Reports;

  explicit Fixture(AllocatorKind Kind = AllocatorKind::Glibc,
                   AllocatorOptions Options = hardenedOptions()) {
    Alloc = createAllocator(Kind, Options);
    H = asHardened(Alloc.get());
    if (H)
      H->setReportHandler(
          [this](const CorruptionReport &R) { Reports.push_back(R); });
  }
};

TEST(HardenedAllocatorTest, FactoryWrapsExactlyWhenEnabled) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    SCOPED_TRACE(allocatorKindName(Kind));
    AllocatorOptions Plain;
    auto Bare = createAllocator(Kind, Plain);
    EXPECT_EQ(asHardened(Bare.get()), nullptr);

    auto Wrapped = createAllocator(Kind, hardenedOptions());
    ASSERT_NE(asHardened(Wrapped.get()), nullptr);
    // The wrapper is transparent to tables and JSON: same allocator key.
    EXPECT_STREQ(Wrapped->name(), Bare->name());
    EXPECT_EQ(Wrapped->supportsPerObjectFree(), Bare->supportsPerObjectFree());
    EXPECT_EQ(Wrapped->supportsBulkFree(), Bare->supportsBulkFree());
  }
}

TEST(HardenedAllocatorTest, StatsCountUserBytesOnly) {
  Fixture F;
  void *P = F.Alloc->allocate(100);
  ASSERT_NE(P, nullptr);
  // Header + red-zone overhead is real memory but not *user* memory.
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 100u);
  EXPECT_EQ(F.Alloc->usableSize(P), 100u);
  F.Alloc->deallocate(P);
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 0u);
  EXPECT_TRUE(F.Reports.empty());
}

TEST(HardenedAllocatorTest, QuarantinedBytesAreNotLiveBytes) {
  // The OOM rollback invariant (live == 0 after cleanup) and the fig09
  // memory columns must hold under --harden even while freed objects sit
  // poisoned in the quarantine ring awaiting recycle.
  Fixture F;
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(F.Alloc->allocate(64));
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 16u * 64u);
  for (void *P : Ptrs)
    F.Alloc->deallocate(P);
  // All 16 fit in the default 64-slot ring: still quarantined, not live.
  EXPECT_EQ(F.H->hardeningStats().QuarantinedBytes, 16u * 64u);
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 0u);
  F.H->drainQuarantine();
  EXPECT_EQ(F.H->hardeningStats().QuarantinedBytes, 0u);
  EXPECT_EQ(F.H->hardeningStats().QuarantineRecycles, 16u);
  EXPECT_TRUE(F.Reports.empty());
}

TEST(HardenedAllocatorTest, RedzoneOverflowIsDetectedAndAttributed) {
  Fixture F;
  auto *P = static_cast<uint8_t *>(F.Alloc->allocate(40));
  P[40 + 2] ^= 0xff; // overflow two bytes past the object end
  F.Alloc->deallocate(P);
  ASSERT_EQ(F.Reports.size(), 1u);
  const CorruptionReport &R = F.Reports[0];
  EXPECT_EQ(R.Kind, CorruptionKind::RedzoneOverflow);
  EXPECT_EQ(R.Allocator, "glibc");
  EXPECT_EQ(R.Site, "deallocate");
  EXPECT_EQ(R.ByteOffset, 42u);
  EXPECT_EQ(R.UserSize, 40u);
  EXPECT_EQ(R.Found, static_cast<uint8_t>(R.Expected ^ 0xff));
  // Repair-after-report: the drain must not re-report the same scribble.
  F.H->drainQuarantine();
  EXPECT_EQ(F.H->hardeningStats().Reports, 1u);
}

TEST(HardenedAllocatorTest, UseAfterFreeWriteIsCaughtAtRecycle) {
  Fixture F;
  auto *P = static_cast<uint8_t *>(F.Alloc->allocate(48));
  F.Alloc->deallocate(P);
  P[5] ^= 0xff; // dangling write into the poisoned, quarantined object
  F.H->drainQuarantine();
  ASSERT_EQ(F.Reports.size(), 1u);
  const CorruptionReport &R = F.Reports[0];
  EXPECT_EQ(R.Kind, CorruptionKind::UseAfterFree);
  EXPECT_EQ(R.Site, "quarantine_recycle");
  EXPECT_EQ(R.ByteOffset, 5u);
  EXPECT_EQ(R.UserSize, 48u);
}

TEST(HardenedAllocatorTest, DoubleFreeIsDetectedWhileQuarantined) {
  Fixture F;
  void *P = F.Alloc->allocate(32);
  F.Alloc->deallocate(P);
  F.Alloc->deallocate(P);
  ASSERT_EQ(F.Reports.size(), 1u);
  EXPECT_EQ(F.Reports[0].Kind, CorruptionKind::DoubleFree);
  EXPECT_EQ(F.Reports[0].Site, "deallocate");
  EXPECT_EQ(F.Reports[0].UserSize, 32u);
  // The first free's quarantine entry is undisturbed by the second.
  F.H->drainQuarantine();
  EXPECT_EQ(F.H->hardeningStats().Reports, 1u);
}

TEST(HardenedAllocatorTest, ForeignPointerIsRejectedAsHeaderClobber) {
  Fixture F;
  // A pointer the heap never handed out: its would-be header cannot carry
  // a valid state checksum.
  alignas(16) static uint8_t NotMine[256];
  F.Alloc->deallocate(NotMine + 64);
  ASSERT_EQ(F.Reports.size(), 1u);
  EXPECT_EQ(F.Reports[0].Kind, CorruptionKind::HeaderClobber);
  // Nothing was freed: live accounting is untouched.
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 0u);
}

TEST(HardenedAllocatorTest, ReallocPreservesContentsAndVerifies) {
  Fixture F;
  auto *P = static_cast<uint8_t *>(F.Alloc->allocate(24));
  for (int I = 0; I < 24; ++I)
    P[I] = static_cast<uint8_t>(I * 7);
  auto *Q = static_cast<uint8_t *>(F.Alloc->reallocate(P, 24, 100));
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 24; ++I)
    EXPECT_EQ(Q[I], static_cast<uint8_t>(I * 7)) << I;
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 100u);
  // Realloc of an already-freed pointer is a double free, not a grow.
  F.Alloc->deallocate(Q);
  EXPECT_EQ(F.Alloc->reallocate(Q, 100, 200), nullptr);
  ASSERT_EQ(F.Reports.size(), 1u);
  EXPECT_EQ(F.Reports[0].Kind, CorruptionKind::DoubleFree);
  EXPECT_EQ(F.Reports[0].Site, "reallocate");
}

TEST(HardenedAllocatorTest, FreeAllVerifiesLiveObjectsAndQuarantine) {
  // DDmalloc supports per-object free AND bulk free, so one heap can hold
  // both a live and a quarantined object when freeAll sweeps.
  Fixture F(AllocatorKind::DDmalloc);
  auto *Live = static_cast<uint8_t *>(F.Alloc->allocate(40));
  auto *Freed = static_cast<uint8_t *>(F.Alloc->allocate(40));
  F.Alloc->deallocate(Freed);
  Live[40] ^= 0x55; // overflow on a still-live object
  Freed[3] ^= 0x55; // dangling write to a quarantined one
  F.Alloc->freeAll();
  ASSERT_EQ(F.Reports.size(), 2u);
  EXPECT_EQ(F.Reports[0].Kind, CorruptionKind::RedzoneOverflow);
  EXPECT_EQ(F.Reports[0].Site, "free_all");
  EXPECT_EQ(F.Reports[1].Kind, CorruptionKind::UseAfterFree);
  EXPECT_EQ(F.Reports[1].Site, "free_all");
  EXPECT_EQ(F.Alloc->stats().UsableBytesLive, 0u);
  EXPECT_EQ(F.H->hardeningStats().QuarantinedBytes, 0u);
}

TEST(HardenedAllocatorTest, InjectionSitesFireExactlyOncePerTrigger) {
  // The chaos benches rely on a 1:1 mapping between a fired injection and
  // a raised report; pin it for one deterministic scribble of each kind.
  FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse("seed=3,heap_scribble_overflow:every=2,"
                               "heap_scribble_uaf:every=3,"
                               "heap_double_free:every=4",
                               Plan, Error))
      << Error;
  FaultInjector::instance().arm(Plan);
  {
    Fixture F;
    for (int I = 0; I < 12; ++I)
      F.Alloc->deallocate(F.Alloc->allocate(64));
    F.H->drainQuarantine();
    const HardeningStats &S = F.H->hardeningStats();
    auto Fired = [](FaultSite Site) {
      return FaultInjector::instance().counters(Site).Fired;
    };
    EXPECT_EQ(S.ReportsByKind[unsigned(CorruptionKind::RedzoneOverflow)],
              Fired(FaultSite::HeapScribbleOverflow));
    EXPECT_EQ(S.ReportsByKind[unsigned(CorruptionKind::UseAfterFree)],
              Fired(FaultSite::HeapScribbleUaf));
    EXPECT_EQ(S.ReportsByKind[unsigned(CorruptionKind::DoubleFree)],
              Fired(FaultSite::HeapDoubleFree));
    EXPECT_GT(S.Reports, 0u);
  }
  FaultInjector::instance().disarm();
}

TEST(HardenedAllocatorTest, DescribeNamesTheDamage) {
  Fixture F;
  auto *P = static_cast<uint8_t *>(F.Alloc->allocate(16));
  P[16] ^= 0x01;
  F.Alloc->deallocate(P);
  ASSERT_EQ(F.Reports.size(), 1u);
  std::string Line = F.Reports[0].describe();
  EXPECT_NE(Line.find("heap corruption detected"), std::string::npos) << Line;
  EXPECT_NE(Line.find("redzone overflow"), std::string::npos) << Line;
  EXPECT_NE(Line.find("allocator=glibc"), std::string::npos) << Line;
  EXPECT_NE(Line.find("site=deallocate"), std::string::npos) << Line;
  EXPECT_NE(Line.find("offset=16"), std::string::npos) << Line;
}

using HardenedAllocatorDeathTest = ::testing::Test;

TEST(HardenedAllocatorDeathTest, DetectionWithoutHandlerIsFatal) {
  // The standalone misuse contract: no handler installed means the report
  // aborts the process with its one-line diagnostic.
  auto Alloc = createAllocator(AllocatorKind::Glibc, hardenedOptions());
  auto *P = static_cast<uint8_t *>(Alloc->allocate(32));
  P[32] ^= 0xff;
  EXPECT_DEATH(Alloc->deallocate(P),
               "heap corruption detected: redzone overflow");
}

TEST(HardenedAllocatorDeathTest, DoubleFreeWithoutHandlerIsFatal) {
  auto Alloc = createAllocator(AllocatorKind::Glibc, hardenedOptions());
  void *P = Alloc->allocate(32);
  Alloc->deallocate(P);
  EXPECT_DEATH(Alloc->deallocate(P), "heap corruption detected: double free");
}

} // namespace
