//===- tests/hardening/GuardedPageTest.cpp - Sampled guard pages ----------===//
///
/// The GWP-ASan-style pool: sampled objects sit right-aligned against a
/// PROT_NONE trailing page, freed slots are re-protected (FIFO reuse
/// maximizes the trap window), and the alignment slack past the object end
/// carries a verified pattern. The death tests prove wild accesses trap at
/// the faulting instruction — the property the whole mechanism buys.
///
//===----------------------------------------------------------------------===//

#include "core/AllocatorFactory.h"
#include "hardening/GuardedPageAllocator.h"
#include "hardening/Hardening.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace ddm;

namespace {

TEST(GuardedPageTest, AllocateFreeRoundTrip) {
  GuardedPageAllocator Pool(4, 0x6a7d);
  ASSERT_TRUE(Pool.available());
  void *P = Pool.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Pool.owns(P));
  EXPECT_EQ(Pool.usableSize(P), 64u);
  EXPECT_EQ(Pool.liveSlots(), 1u);
  // The whole object is writable.
  std::memset(P, 0xab, 64);
  CorruptionReport R;
  EXPECT_TRUE(Pool.deallocate(P, R));
  EXPECT_EQ(Pool.liveSlots(), 0u);
  EXPECT_FALSE(Pool.owns(&R));
}

TEST(GuardedPageTest, SlackScribbleIsReportedAtFree) {
  GuardedPageAllocator Pool(4, 0x6a7d);
  ASSERT_TRUE(Pool.available());
  // 60 bytes round up to 64: four slack bytes separate the object end from
  // the guard page, and a small overflow lands there.
  auto *P = static_cast<uint8_t *>(Pool.allocate(60));
  ASSERT_NE(P, nullptr);
  P[60] ^= 0xff;
  CorruptionReport R;
  EXPECT_FALSE(Pool.deallocate(P, R));
  EXPECT_EQ(R.Kind, CorruptionKind::GuardViolation);
  EXPECT_EQ(R.Site, "guard_free");
  EXPECT_EQ(R.ByteOffset, 60u);
  EXPECT_EQ(R.UserSize, 60u);
  // The slot was still freed: the pool is not wedged.
  EXPECT_EQ(Pool.liveSlots(), 0u);
}

TEST(GuardedPageTest, ExhaustedPoolRefusesAndRecovers) {
  GuardedPageAllocator Pool(2, 1);
  ASSERT_TRUE(Pool.available());
  void *A = Pool.allocate(32);
  void *B = Pool.allocate(32);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(Pool.allocate(32), nullptr); // caller falls back to normal path
  CorruptionReport R;
  EXPECT_TRUE(Pool.deallocate(A, R));
  EXPECT_NE(Pool.allocate(32), nullptr);
}

TEST(GuardedPageTest, FreedAndForeignPointersAreRejected) {
  GuardedPageAllocator Pool(2, 1);
  ASSERT_TRUE(Pool.available());
  void *P = Pool.allocate(32);
  CorruptionReport R;
  ASSERT_TRUE(Pool.deallocate(P, R));
  // Double free into the pool: recognizably not a live slot.
  EXPECT_FALSE(Pool.deallocate(P, R));
  EXPECT_EQ(R.Kind, CorruptionKind::HeaderClobber);
  EXPECT_EQ(Pool.usableSize(P), 0u);
}

TEST(GuardedPageTest, HardenedAllocatorSamplesThroughThePool) {
  AllocatorOptions Options;
  Options.Hardening.Enabled = true;
  Options.Hardening.GuardSampleEveryN = 1; // sample every allocation
  Options.Hardening.GuardSlots = 4;
  auto Alloc = createAllocator(AllocatorKind::Glibc, Options);
  HardenedAllocator *H = asHardened(Alloc.get());
  ASSERT_NE(H, nullptr);
  void *P = Alloc->allocate(128);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H->hardeningStats().GuardAllocs, 1u);
  EXPECT_EQ(Alloc->usableSize(P), 128u);
  EXPECT_EQ(Alloc->stats().UsableBytesLive, 128u);
  // The pool's guard pages are part of the real footprint.
  EXPECT_GT(Alloc->memoryConsumption(), 0u);
  Alloc->deallocate(P);
  EXPECT_EQ(Alloc->stats().UsableBytesLive, 0u);
}

using GuardedPageDeathTest = ::testing::Test;

TEST(GuardedPageDeathTest, OverflowIntoTheGuardPageTraps) {
  GuardedPageAllocator Pool(2, 7);
  ASSERT_TRUE(Pool.available());
  auto *P = static_cast<uint8_t *>(Pool.allocate(64));
  ASSERT_NE(P, nullptr);
  // The object is right-aligned: 64 bytes past its end is the PROT_NONE
  // trailing page, and the store traps at this instruction.
  EXPECT_DEATH({ P[64 + 64] = 1; }, "");
}

TEST(GuardedPageDeathTest, UseAfterFreeOnAProtectedSlotTraps) {
  GuardedPageAllocator Pool(2, 7);
  ASSERT_TRUE(Pool.available());
  auto *P = static_cast<uint8_t *>(Pool.allocate(64));
  ASSERT_NE(P, nullptr);
  CorruptionReport R;
  ASSERT_TRUE(Pool.deallocate(P, R));
  // The data page went back to PROT_NONE on free.
  EXPECT_DEATH({ P[0] = 1; }, "");
}

} // namespace
