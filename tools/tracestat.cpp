//===- tools/tracestat.cpp - Inspect and transform allocation traces ------===//
///
/// \file
/// The trace toolbox: validates `.ddmtrc` files and prints their
/// per-transaction call statistics in Table 3's terms (malloc/free/realloc
/// calls per transaction, mean allocation size), or rewrites them:
///
///   tracestat run.ddmtrc                      # validate + statistics
///   tracestat --json run.ddmtrc               # machine-readable form
///   tracestat --throughput run.ddmtrc         # decode-rate measurement
///   tracestat --reader stream run.ddmtrc      # force a reader kind
///   tracestat --truncate 100 --out short.ddmtrc run.ddmtrc
///   tracestat --scale-sizes 2.0 --out big.ddmtrc run.ddmtrc
///   tracestat --shard 4 --out core run.ddmtrc # core.0.ddmtrc .. core.3.ddmtrc
///   tracestat --interleave --out merged.ddmtrc core.*.ddmtrc
///
/// Sharding deals whole transactions round-robin across N outputs
/// (splitting one recorded feed across N simulated cores); interleaving is
/// the exact inverse — shard then interleave reproduces the input byte for
/// byte.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Table.h"
#include "trace/TraceInput.h"
#include "trace/TraceReplayer.h"
#include "trace/TraceTransform.h"
#include "workload/WorkloadSpec.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ddm;

namespace {

std::string formatDouble(double V, const char *Fmt = "%.1f") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  return Buf;
}

/// --throughput: times a full batched decode of every input through the
/// selected reader and prints the rate. Flag-gated so the default stat
/// output stays byte-stable for the e2e tests that diff it.
int throughputTraces(const std::vector<std::string> &Paths,
                     TraceReaderKind Kind, bool Json, bool Csv) {
  struct Row {
    const char *Reader = "";
    uint64_t Events = 0;
    uint64_t Bytes = 0;
    double Ms = 0;
  };
  std::vector<Row> Rows(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I) {
    // Best of three passes: the numbers feed speedup comparisons, and a
    // single cold pass mostly measures the page cache.
    for (int Pass = 0; Pass < 3; ++Pass) {
      TraceStatus S;
      std::unique_ptr<TraceInput> In = openTraceInput(Paths[I], Kind, S);
      if (!In) {
        std::fprintf(stderr, "tracestat: '%s': %s\n", Paths[I].c_str(),
                     S.describe().c_str());
        return 1;
      }
      auto T0 = std::chrono::steady_clock::now();
      uint64_t Events = 0;
      TraceEventSpan Span;
      TraceInput::Next R;
      while ((R = In->nextBatch(Span)) == TraceInput::Next::Event)
        Events += Span.Size;
      if (R == TraceInput::Next::Error) {
        std::fprintf(stderr, "tracestat: '%s': %s\n", Paths[I].c_str(),
                     In->status().describe().c_str());
        return 1;
      }
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      Rows[I].Reader = In->readerName();
      Rows[I].Events = Events;
      Rows[I].Bytes = In->byteOffset();
      if (Pass == 0 || Ms < Rows[I].Ms)
        Rows[I].Ms = Ms;
    }
  }

  auto PerSec = [](const Row &R) {
    return R.Ms > 0 ? static_cast<double>(R.Events) / (R.Ms / 1e3) : 0;
  };
  if (Json) {
    JsonWriter J;
    J.beginObject().field("tool", "tracestat").key("throughput").beginArray();
    for (size_t I = 0; I < Paths.size(); ++I) {
      const Row &R = Rows[I];
      J.beginObject()
          .field("file", Paths[I])
          .field("reader", R.Reader)
          .field("events", R.Events)
          .field("bytes", R.Bytes)
          .field("ms", R.Ms)
          .field("events_per_sec", PerSec(R))
          .endObject();
    }
    J.endArray().endObject();
    std::printf("%s\n", J.str().c_str());
    return 0;
  }
  Table Out({"trace", "reader", "events", "ms", "events/sec", "MB/s"});
  for (size_t I = 0; I < Paths.size(); ++I) {
    const Row &R = Rows[I];
    Out.row()
        .cell(Paths[I])
        .cell(R.Reader)
        .cell(R.Events)
        .cell(R.Ms, 2)
        .cell(PerSec(R), 0)
        .cell(R.Ms > 0 ? static_cast<double>(R.Bytes) / 1e6 / (R.Ms / 1e3) : 0,
              1);
  }
  std::fputs((Csv ? Out.renderCsv() : Out.renderAscii()).c_str(), stdout);
  return 0;
}

/// Validates and summarizes every input; prints the Table 3 view (or JSON).
int statTraces(const std::vector<std::string> &Paths, TraceReaderKind Kind,
               bool Json, bool Csv) {
  std::vector<TraceSummary> Summaries(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I) {
    if (TraceStatus S = summarizeTrace(Paths[I], Summaries[I], Kind); !S) {
      std::fprintf(stderr, "tracestat: '%s': %s\n", Paths[I].c_str(),
                   S.describe().c_str());
      return 1;
    }
  }

  if (Json) {
    JsonWriter J;
    J.beginObject().field("tool", "tracestat").key("traces").beginArray();
    for (size_t I = 0; I < Paths.size(); ++I) {
      const TraceSummary &S = Summaries[I];
      J.beginObject()
          .field("file", Paths[I])
          .field("workload", S.Meta.Workload)
          .field("scale", S.Meta.Scale)
          .field("seed", S.Meta.Seed)
          .field("transactions", S.Transactions)
          .field("events", S.Events)
          .field("mallocs_per_tx", S.mallocsPerTx())
          .field("frees_per_tx", S.freesPerTx())
          .field("reallocs_per_tx", S.reallocsPerTx())
          .field("callocs", S.Total.Callocs)
          .field("aligned_allocs", S.Total.AlignedAllocs)
          .field("mean_alloc_bytes", S.meanAllocBytes())
          .field("allocated_bytes", S.Total.AllocatedBytes)
          .field("object_touches", S.Total.ObjectTouches)
          .field("state_touches", S.Total.StateTouches)
          .field("work_instructions", S.Total.WorkInstructions)
          .endObject();
    }
    J.endArray().endObject();
    std::printf("%s\n", J.str().c_str());
    return 0;
  }

  // The paper's Table 3 columns, computed from the trace instead of the
  // live generator; paper reference values appear when the trace's
  // workload is one this build knows (at scale 1.0 they should agree).
  Table Out({"trace", "workload", "scale", "tx", "malloc/tx", "paper",
             "free/tx", "paper", "realloc/tx", "paper", "alloc size (B)",
             "paper"});
  for (size_t I = 0; I < Paths.size(); ++I) {
    const TraceSummary &S = Summaries[I];
    const WorkloadSpec *W = findWorkload(S.Meta.Workload);
    auto PaperCount = [&](uint64_t V) {
      return W ? std::to_string(V) : std::string("-");
    };
    Out.row()
        .cell(Paths[I])
        .cell(S.Meta.Workload)
        .cell(S.Meta.Scale, 2)
        .cell(S.Transactions)
        .cell(S.mallocsPerTx(), 0)
        .cell(PaperCount(W ? W->MallocCalls : 0))
        .cell(S.freesPerTx(), 0)
        .cell(PaperCount(W ? W->FreeCalls : 0))
        .cell(S.reallocsPerTx(), 0)
        .cell(PaperCount(W ? W->ReallocCalls : 0))
        .cell(S.meanAllocBytes(), 1)
        .cell(W ? formatDouble(W->MeanAllocBytes) : std::string("-"));
  }
  std::fputs((Csv ? Out.renderCsv() : Out.renderAscii()).c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Truncate = 0;
  double ScaleSizes = 0.0;
  uint64_t Shard = 0;
  bool Interleave = false;
  std::string OutPath;
  bool Json = false;
  bool Csv = false;
  bool Throughput = false;
  std::string ReaderName = "auto";
  ArgParser Parser(
      "Validates allocation traces (.ddmtrc) and prints their Table 3 "
      "statistics, or transforms them (truncate, size-scale, round-robin "
      "shard/interleave). Positional arguments are input traces.");
  Parser.addFlag("truncate", &Truncate,
                 "write only the first N transactions to --out");
  Parser.addFlag("scale-sizes", &ScaleSizes,
                 "write a copy with allocation sizes scaled by this factor "
                 "to --out");
  Parser.addFlag("shard", &Shard,
                 "deal transactions round-robin across N traces named "
                 "<out>.<i>" +
                     std::string(TraceFileSuffix));
  Parser.addFlag("interleave", &Interleave,
                 "merge the input traces round-robin into --out");
  Parser.addFlag("out", &OutPath, "output path (prefix for --shard)");
  Parser.addFlag("throughput", &Throughput,
                 "measure batched decode throughput instead of statistics");
  Parser.addFlag("reader", &ReaderName,
                 "trace reader: auto (mmap for regular files), stream, or "
                 "mmap");
  Parser.addFlag("json", &Json, "emit machine-readable JSON");
  Parser.addFlag("csv", &Csv, "emit CSV instead of ASCII");
  if (!Parser.parse(Argc, Argv))
    return 1;

  const std::vector<std::string> &Inputs = Parser.positional();
  if (Inputs.empty()) {
    std::fprintf(stderr, "tracestat: no input traces (try --help)\n");
    return 1;
  }
  TraceReaderKind ReaderKind = TraceReaderKind::Auto;
  if (!traceReaderKindFromName(ReaderName, ReaderKind)) {
    std::fprintf(stderr, "tracestat: unknown --reader '%s' (auto, stream, "
                         "or mmap)\n",
                 ReaderName.c_str());
    return 1;
  }
  if (Throughput)
    return throughputTraces(Inputs, ReaderKind, Json, Csv);
  unsigned Transforms = (Truncate ? 1 : 0) + (ScaleSizes != 0.0 ? 1 : 0) +
                        (Shard ? 1 : 0) + (Interleave ? 1 : 0);
  if (Transforms > 1) {
    std::fprintf(stderr, "tracestat: pick one transform at a time\n");
    return 1;
  }
  if (Transforms == 0)
    return statTraces(Inputs, ReaderKind, Json, Csv);

  if (OutPath.empty()) {
    std::fprintf(stderr, "tracestat: transforms need --out\n");
    return 1;
  }
  if (!Interleave && Inputs.size() != 1) {
    std::fprintf(stderr, "tracestat: this transform takes one input trace\n");
    return 1;
  }

  TraceStatus S;
  std::vector<std::string> Outputs;
  if (Truncate) {
    S = truncateTrace(Inputs[0], OutPath, Truncate);
    Outputs = {OutPath};
  } else if (ScaleSizes != 0.0) {
    S = scaleTraceSizes(Inputs[0], OutPath, ScaleSizes);
    Outputs = {OutPath};
  } else if (Shard) {
    for (uint64_t I = 0; I < Shard; ++I)
      Outputs.push_back(OutPath + "." + std::to_string(I) + TraceFileSuffix);
    S = shardTrace(Inputs[0], Outputs);
  } else {
    S = interleaveTraces(Inputs, OutPath);
    Outputs = {OutPath};
  }
  if (!S) {
    std::fprintf(stderr, "tracestat: %s\n", S.describe().c_str());
    return 1;
  }
  return statTraces(Outputs, ReaderKind, Json, Csv);
}
