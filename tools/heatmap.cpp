//===- tools/heatmap.cpp - Access heat maps from trace replay -------------===//
///
/// \file
/// Replays captured traces (including the synthesized fleet shards)
/// through a runtime whose only sink is the DAMON-style AccessSampler,
/// then prints the per-region heat report — region table with heat, age,
/// and access-width histograms as text, or the sampler's deterministic
/// JSON report per shard. Because both the replay and the sampler are
/// deterministic over canonical addresses, the report for a given trace,
/// allocator, and sampler configuration is byte-identical on every run
/// and machine — which is what lets CI diff it.
///
//===----------------------------------------------------------------------===//

#include "core/AllocatorFactory.h"
#include "runtime/TransactionRuntime.h"
#include "sampling/AccessSampler.h"
#include "support/ArgParse.h"
#include "trace/TraceReplayer.h"
#include "workload/WorkloadSpec.h"

#include <cstdio>
#include <string>

using namespace ddm;

namespace {

AllocatorKind kindByName(const std::string &Name) {
  for (AllocatorKind Kind : allAllocatorKinds())
    if (Name == allocatorKindName(Kind))
      return Kind;
  std::fprintf(stderr, "unknown allocator '%s'\n", Name.c_str());
  std::exit(1);
}

/// Minimal JSON string escape for file paths and workload names.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Allocator = "ddmalloc";
  uint64_t Transactions = 0; // 0 = the whole trace.
  uint64_t SampleInterval = 32;
  uint64_t WindowEvents = 2048;
  uint64_t MaxRegions = 64;
  bool Json = false;
  ArgParser Parser(
      "Replays traces through the access sampler and prints per-region "
      "heat maps. Positional arguments are trace files (.ddmtrc).");
  Parser.addFlag("allocator", &Allocator,
                 "allocator the replay runs against (see README zoo table)");
  Parser.addFlag("transactions", &Transactions,
                 "transactions to replay per trace (0 = all)");
  Parser.addFlag("sample-interval", &SampleInterval,
                 "sample one in N load/store events");
  Parser.addFlag("window", &WindowEvents,
                 "sampled events per aggregation window");
  Parser.addFlag("max-regions", &MaxRegions, "region-count bound");
  Parser.addFlag("json", &Json, "machine-readable report per trace");
  if (!Parser.parse(Argc, Argv))
    return 1;
  if (Parser.positional().empty()) {
    std::fprintf(stderr, "no trace files given (try --help)\n");
    return 1;
  }

  SamplerOptions Opts;
  Opts.SampleInterval = static_cast<unsigned>(SampleInterval);
  Opts.WindowEvents = WindowEvents;
  Opts.MaxRegions = static_cast<unsigned>(MaxRegions);
  // Pure monitoring: no downstream machine model, so no overhead charge.
  Opts.InstrPerSample = 0;
  AllocatorKind Kind = kindByName(Allocator);

  if (Json)
    std::printf("{\"tool\":\"heatmap\",\"allocator\":\"%s\",\"traces\":[",
                allocatorKindName(Kind));

  bool First = true;
  for (const std::string &Path : Parser.positional()) {
    TraceReplayer Replayer;
    TraceStatus Status = Replayer.open(Path);
    if (!Status.ok()) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                   Status.describe().c_str());
      return 1;
    }

    // Synthesized shards name a workload this build does not generate;
    // replay drives every event, so a generic spec only has to bound the
    // state area (16 MB covers every corpus workload the shards were
    // synthesized from).
    WorkloadSpec Spec;
    if (const WorkloadSpec *Known = Replayer.workload())
      Spec = *Known;
    else
      Spec.AppStateBytes = 16ull * 1024 * 1024;
    Spec.Name = Replayer.meta().Workload;

    RuntimeConfig Config;
    Config.Kind = Kind;
    Config.UseBulkFree = allocatorSupportsBulkFree(Kind);
    Config.Scale = Replayer.meta().Scale;
    Config.Seed = Replayer.meta().Seed;

    AccessSampler Sampler(nullptr, Opts);
    TransactionRuntime Runtime(Spec, Config, &Sampler);

    uint64_t Replayed = 0;
    bool AtEnd = false;
    while (!AtEnd && (Transactions == 0 || Replayed < Transactions)) {
      switch (Replayer.replayTransaction(Runtime)) {
      case TraceReplayer::Step::Tx:
        ++Replayed;
        break;
      case TraceReplayer::Step::End:
        AtEnd = true;
        break;
      case TraceReplayer::Step::Error:
        std::fprintf(stderr, "%s: replay failed: %s\n", Path.c_str(),
                     Replayer.status().describe().c_str());
        return 1;
      }
    }
    Sampler.flush();

    if (Json) {
      std::printf("%s{\"file\":\"%s\",\"workload\":\"%s\","
                  "\"transactions\":%llu,\"report\":%s}",
                  First ? "" : ",", jsonEscape(Path).c_str(),
                  jsonEscape(Spec.Name).c_str(),
                  static_cast<unsigned long long>(Replayed),
                  Sampler.renderJson().c_str());
      First = false;
    } else {
      std::printf("%s (%s, %llu tx, allocator %s)\n", Path.c_str(),
                  Spec.Name.c_str(),
                  static_cast<unsigned long long>(Replayed),
                  allocatorKindName(Kind));
      std::fputs(Sampler.renderText().c_str(), stdout);
      std::printf("\n");
    }
  }

  if (Json)
    std::printf("]}\n");
  return 0;
}
