//===- tools/tracesynth.cpp - Synthesize fleet-scale replay traces --------===//
///
/// \file
/// Composes recorded per-workload traces into a sharded multi-tenant
/// replay corpus (see trace/TraceSynthesizer.h):
///
///   tracesynth --out fleet --shards 4 --transactions 20000 \
///              --workers 1000000 --schedule diurnal --seed 42 \
///              traces/cgi.ddmtrc traces/dynamic-local.ddmtrc
///
/// writes fleet.0.ddmtrc .. fleet.3.ddmtrc and prints a per-shard /
/// per-tenant accounting table (or JSON with --json). Tenant arrival
/// weights default to 1 each; --weights 3,1 biases the mix. The same
/// flags and seed reproduce the shard files byte for byte on any
/// platform — CI counts on that.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Table.h"
#include "trace/TraceSynthesizer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ddm;

namespace {

/// Parses a comma-separated list of positive integers ("3,1,2").
bool parseWeights(const std::string &Text, std::vector<uint32_t> &Out) {
  std::string Item;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I < Text.size() && Text[I] != ',') {
      Item += Text[I];
      continue;
    }
    uint64_t V = 0;
    if (!parseUint64(Item.c_str(), V) || V == 0 || V > UINT32_MAX)
      return false;
    Out.push_back(static_cast<uint32_t>(V));
    Item.clear();
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPrefix;
  uint64_t Shards = 4;
  uint64_t Transactions = 1000;
  uint64_t Workers = 1000;
  uint64_t Seed = 1;
  std::string ScheduleName = "diurnal";
  std::string WeightsText;
  bool Json = false;
  ArgParser Parser(
      "Synthesizes a sharded multi-tenant replay corpus from recorded "
      "traces. Positional arguments are source traces (the tenants); "
      "transactions are dealt to simulated workers on an arrival schedule "
      "and sharded by worker id. Identical flags + seed reproduce the "
      "output byte for byte.");
  Parser.addFlag("out", &OutPrefix,
                 "output prefix; shards are <out>.<i>" +
                     std::string(TraceFileSuffix));
  Parser.addFlag("shards", &Shards, "number of output shard files");
  Parser.addFlag("transactions", &Transactions,
                 "total transactions across the synthetic day");
  Parser.addFlag("workers", &Workers,
                 "simulated worker-process population");
  Parser.addFlag("schedule", &ScheduleName,
                 "arrival schedule: constant, diurnal, or flash");
  Parser.addFlag("seed", &Seed, "seed for tenant/worker arrival draws");
  Parser.addFlag("weights", &WeightsText,
                 "comma-separated tenant arrival weights (default: 1 each)");
  Parser.addFlag("json", &Json, "emit the accounting report as JSON");
  if (!Parser.parse(Argc, Argv))
    return 1;

  SynthSpec Spec;
  if (!synthScheduleFromName(ScheduleName, Spec.Schedule)) {
    std::fprintf(stderr,
                 "tracesynth: unknown schedule '%s' (constant, diurnal, "
                 "flash)\n",
                 ScheduleName.c_str());
    return 1;
  }
  if (OutPrefix.empty()) {
    std::fprintf(stderr, "tracesynth: --out is required\n");
    return 1;
  }
  if (Parser.positional().empty()) {
    std::fprintf(stderr, "tracesynth: no source traces (try --help)\n");
    return 1;
  }
  if (Shards == 0 || Shards > 4096) {
    std::fprintf(stderr, "tracesynth: --shards must be in 1..4096\n");
    return 1;
  }
  if (Workers == 0 || Workers > UINT32_MAX) {
    std::fprintf(stderr, "tracesynth: --workers must be in 1..2^32-1\n");
    return 1;
  }

  std::vector<uint32_t> Weights;
  if (!WeightsText.empty() && !parseWeights(WeightsText, Weights)) {
    std::fprintf(stderr,
                 "tracesynth: --weights wants comma-separated positive "
                 "integers\n");
    return 1;
  }
  if (!Weights.empty() && Weights.size() != Parser.positional().size()) {
    std::fprintf(stderr,
                 "tracesynth: %zu weights for %zu source traces\n",
                 Weights.size(), Parser.positional().size());
    return 1;
  }

  for (size_t I = 0; I < Parser.positional().size(); ++I) {
    SynthSource S;
    S.Path = Parser.positional()[I];
    S.Weight = Weights.empty() ? 1 : Weights[I];
    Spec.Sources.push_back(std::move(S));
  }
  Spec.Workers = static_cast<uint32_t>(Workers);
  Spec.Transactions = Transactions;
  Spec.Shards = static_cast<uint32_t>(Shards);
  Spec.Seed = Seed;

  SynthReport Report;
  if (TraceStatus S = synthesizeTrace(Spec, OutPrefix, Report); !S) {
    std::fprintf(stderr, "tracesynth: %s\n", S.describe().c_str());
    return 1;
  }

  if (Json) {
    JsonWriter J;
    J.beginObject()
        .field("tool", "tracesynth")
        .field("schedule", synthScheduleName(Spec.Schedule))
        .field("workers", Spec.Workers)
        .field("transactions", Spec.Transactions)
        .field("seed", Spec.Seed)
        .field("total_events", Report.TotalEvents)
        .key("shards")
        .beginArray();
    for (size_t I = 0; I < Report.ShardPaths.size(); ++I)
      J.beginObject()
          .field("file", Report.ShardPaths[I])
          .field("transactions", Report.ShardTransactions[I])
          .field("events", Report.ShardEvents[I])
          .field("bytes", Report.ShardBytes[I])
          .endObject();
    J.endArray().key("sources").beginArray();
    for (size_t I = 0; I < Spec.Sources.size(); ++I)
      J.beginObject()
          .field("file", Spec.Sources[I].Path)
          .field("weight", static_cast<uint64_t>(Spec.Sources[I].Weight))
          .field("transactions", Report.SourceTransactions[I])
          .endObject();
    J.endArray().key("slot_transactions").beginArray();
    for (uint64_t N : Report.SlotTransactions)
      J.value(N);
    J.endArray().endObject();
    std::printf("%s\n", J.str().c_str());
    return 0;
  }

  Table Shard({"shard", "tx", "events", "bytes"});
  for (size_t I = 0; I < Report.ShardPaths.size(); ++I)
    Shard.row()
        .cell(Report.ShardPaths[I])
        .cell(Report.ShardTransactions[I])
        .cell(Report.ShardEvents[I])
        .cell(Report.ShardBytes[I]);
  std::fputs(Shard.renderAscii().c_str(), stdout);

  Table Tenant({"tenant", "weight", "tx"});
  for (size_t I = 0; I < Spec.Sources.size(); ++I)
    Tenant.row()
        .cell(Spec.Sources[I].Path)
        .cell(static_cast<uint64_t>(Spec.Sources[I].Weight))
        .cell(Report.SourceTransactions[I]);
  std::fputs(Tenant.renderAscii().c_str(), stdout);
  std::printf("schedule %s over %u workers, %llu tx, %llu events total\n",
              synthScheduleName(Spec.Schedule), Spec.Workers,
              static_cast<unsigned long long>(Spec.Transactions),
              static_cast<unsigned long long>(Report.TotalEvents));
  return 0;
}
