file(REMOVE_RECURSE
  "CMakeFiles/webserver_sim.dir/webserver_sim.cpp.o"
  "CMakeFiles/webserver_sim.dir/webserver_sim.cpp.o.d"
  "webserver_sim"
  "webserver_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
