# Empty dependencies file for webserver_sim.
# This may be replaced when dependencies are built.
