file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_largepage.dir/ablation_largepage.cpp.o"
  "CMakeFiles/bench_ablation_largepage.dir/ablation_largepage.cpp.o.d"
  "bench_ablation_largepage"
  "bench_ablation_largepage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_largepage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
