# Empty dependencies file for bench_ablation_largepage.
# This may be replaced when dependencies are built.
