file(REMOVE_RECURSE
  "CMakeFiles/bench_native_allocators.dir/native_allocators.cpp.o"
  "CMakeFiles/bench_native_allocators.dir/native_allocators.cpp.o.d"
  "bench_native_allocators"
  "bench_native_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
