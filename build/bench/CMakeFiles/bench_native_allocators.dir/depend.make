# Empty dependencies file for bench_native_allocators.
# This may be replaced when dependencies are built.
