# Empty compiler generated dependencies file for bench_discussion_gc_frequency.
# This may be replaced when dependencies are built.
