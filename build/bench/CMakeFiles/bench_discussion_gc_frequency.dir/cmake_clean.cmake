file(REMOVE_RECURSE
  "CMakeFiles/bench_discussion_gc_frequency.dir/discussion_gc_frequency.cpp.o"
  "CMakeFiles/bench_discussion_gc_frequency.dir/discussion_gc_frequency.cpp.o.d"
  "bench_discussion_gc_frequency"
  "bench_discussion_gc_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion_gc_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
