# Empty compiler generated dependencies file for bench_fig01_region_degradation.
# This may be replaced when dependencies are built.
