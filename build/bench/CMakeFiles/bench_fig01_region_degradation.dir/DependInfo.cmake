
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_region_degradation.cpp" "bench/CMakeFiles/bench_fig01_region_degradation.dir/fig01_region_degradation.cpp.o" "gcc" "bench/CMakeFiles/bench_fig01_region_degradation.dir/fig01_region_degradation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/ddm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ddm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ddm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ddm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
