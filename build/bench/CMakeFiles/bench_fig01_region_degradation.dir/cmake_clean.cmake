file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_region_degradation.dir/fig01_region_degradation.cpp.o"
  "CMakeFiles/bench_fig01_region_degradation.dir/fig01_region_degradation.cpp.o.d"
  "bench_fig01_region_degradation"
  "bench_fig01_region_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_region_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
