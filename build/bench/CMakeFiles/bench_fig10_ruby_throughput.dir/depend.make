# Empty dependencies file for bench_fig10_ruby_throughput.
# This may be replaced when dependencies are built.
