# Empty compiler generated dependencies file for bench_fig08_event_deltas.
# This may be replaced when dependencies are built.
