file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_event_deltas.dir/fig08_event_deltas.cpp.o"
  "CMakeFiles/bench_fig08_event_deltas.dir/fig08_event_deltas.cpp.o.d"
  "bench_fig08_event_deltas"
  "bench_fig08_event_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_event_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
