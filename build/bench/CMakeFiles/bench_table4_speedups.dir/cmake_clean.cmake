file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_speedups.dir/table4_speedups.cpp.o"
  "CMakeFiles/bench_table4_speedups.dir/table4_speedups.cpp.o.d"
  "bench_table4_speedups"
  "bench_table4_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
