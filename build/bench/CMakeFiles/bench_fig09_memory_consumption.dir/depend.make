# Empty dependencies file for bench_fig09_memory_consumption.
# This may be replaced when dependencies are built.
