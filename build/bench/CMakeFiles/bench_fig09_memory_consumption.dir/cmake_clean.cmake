file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_memory_consumption.dir/fig09_memory_consumption.cpp.o"
  "CMakeFiles/bench_fig09_memory_consumption.dir/fig09_memory_consumption.cpp.o.d"
  "bench_fig09_memory_consumption"
  "bench_fig09_memory_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_memory_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
