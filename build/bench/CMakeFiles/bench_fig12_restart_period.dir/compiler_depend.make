# Empty compiler generated dependencies file for bench_fig12_restart_period.
# This may be replaced when dependencies are built.
