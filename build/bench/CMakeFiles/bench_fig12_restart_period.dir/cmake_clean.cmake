file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_restart_period.dir/fig12_restart_period.cpp.o"
  "CMakeFiles/bench_fig12_restart_period.dir/fig12_restart_period.cpp.o.d"
  "bench_fig12_restart_period"
  "bench_fig12_restart_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_restart_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
