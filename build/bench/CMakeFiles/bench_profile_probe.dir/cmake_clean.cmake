file(REMOVE_RECURSE
  "CMakeFiles/bench_profile_probe.dir/profile_probe.cpp.o"
  "CMakeFiles/bench_profile_probe.dir/profile_probe.cpp.o.d"
  "bench_profile_probe"
  "bench_profile_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
