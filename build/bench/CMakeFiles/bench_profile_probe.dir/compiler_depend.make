# Empty compiler generated dependencies file for bench_profile_probe.
# This may be replaced when dependencies are built.
