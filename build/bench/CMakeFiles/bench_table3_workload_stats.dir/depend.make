# Empty dependencies file for bench_table3_workload_stats.
# This may be replaced when dependencies are built.
