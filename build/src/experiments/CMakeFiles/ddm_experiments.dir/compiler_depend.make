# Empty compiler generated dependencies file for ddm_experiments.
# This may be replaced when dependencies are built.
