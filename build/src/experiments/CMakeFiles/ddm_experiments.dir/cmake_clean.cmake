file(REMOVE_RECURSE
  "CMakeFiles/ddm_experiments.dir/Measure.cpp.o"
  "CMakeFiles/ddm_experiments.dir/Measure.cpp.o.d"
  "libddm_experiments.a"
  "libddm_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
