file(REMOVE_RECURSE
  "libddm_experiments.a"
)
