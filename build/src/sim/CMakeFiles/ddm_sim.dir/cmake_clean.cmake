file(REMOVE_RECURSE
  "CMakeFiles/ddm_sim.dir/Cache.cpp.o"
  "CMakeFiles/ddm_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/ddm_sim.dir/Performance.cpp.o"
  "CMakeFiles/ddm_sim.dir/Performance.cpp.o.d"
  "CMakeFiles/ddm_sim.dir/Platform.cpp.o"
  "CMakeFiles/ddm_sim.dir/Platform.cpp.o.d"
  "CMakeFiles/ddm_sim.dir/Prefetcher.cpp.o"
  "CMakeFiles/ddm_sim.dir/Prefetcher.cpp.o.d"
  "CMakeFiles/ddm_sim.dir/SimSink.cpp.o"
  "CMakeFiles/ddm_sim.dir/SimSink.cpp.o.d"
  "CMakeFiles/ddm_sim.dir/Tlb.cpp.o"
  "CMakeFiles/ddm_sim.dir/Tlb.cpp.o.d"
  "libddm_sim.a"
  "libddm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
