
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cache.cpp" "src/sim/CMakeFiles/ddm_sim.dir/Cache.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/Cache.cpp.o.d"
  "/root/repo/src/sim/Performance.cpp" "src/sim/CMakeFiles/ddm_sim.dir/Performance.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/Performance.cpp.o.d"
  "/root/repo/src/sim/Platform.cpp" "src/sim/CMakeFiles/ddm_sim.dir/Platform.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/Platform.cpp.o.d"
  "/root/repo/src/sim/Prefetcher.cpp" "src/sim/CMakeFiles/ddm_sim.dir/Prefetcher.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/Prefetcher.cpp.o.d"
  "/root/repo/src/sim/SimSink.cpp" "src/sim/CMakeFiles/ddm_sim.dir/SimSink.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/SimSink.cpp.o.d"
  "/root/repo/src/sim/Tlb.cpp" "src/sim/CMakeFiles/ddm_sim.dir/Tlb.cpp.o" "gcc" "src/sim/CMakeFiles/ddm_sim.dir/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ddm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
