file(REMOVE_RECURSE
  "libddm_core.a"
)
