file(REMOVE_RECURSE
  "CMakeFiles/ddm_core.dir/AllocatorFactory.cpp.o"
  "CMakeFiles/ddm_core.dir/AllocatorFactory.cpp.o.d"
  "CMakeFiles/ddm_core.dir/BoundaryTagHeap.cpp.o"
  "CMakeFiles/ddm_core.dir/BoundaryTagHeap.cpp.o.d"
  "CMakeFiles/ddm_core.dir/DDmalloc.cpp.o"
  "CMakeFiles/ddm_core.dir/DDmalloc.cpp.o.d"
  "CMakeFiles/ddm_core.dir/GlibcModelAllocator.cpp.o"
  "CMakeFiles/ddm_core.dir/GlibcModelAllocator.cpp.o.d"
  "CMakeFiles/ddm_core.dir/HoardModel.cpp.o"
  "CMakeFiles/ddm_core.dir/HoardModel.cpp.o.d"
  "CMakeFiles/ddm_core.dir/ObstackAllocator.cpp.o"
  "CMakeFiles/ddm_core.dir/ObstackAllocator.cpp.o.d"
  "CMakeFiles/ddm_core.dir/RegionAllocator.cpp.o"
  "CMakeFiles/ddm_core.dir/RegionAllocator.cpp.o.d"
  "CMakeFiles/ddm_core.dir/SizeClasses.cpp.o"
  "CMakeFiles/ddm_core.dir/SizeClasses.cpp.o.d"
  "CMakeFiles/ddm_core.dir/TCMallocModel.cpp.o"
  "CMakeFiles/ddm_core.dir/TCMallocModel.cpp.o.d"
  "CMakeFiles/ddm_core.dir/TxAllocator.cpp.o"
  "CMakeFiles/ddm_core.dir/TxAllocator.cpp.o.d"
  "CMakeFiles/ddm_core.dir/ZendDefaultAllocator.cpp.o"
  "CMakeFiles/ddm_core.dir/ZendDefaultAllocator.cpp.o.d"
  "libddm_core.a"
  "libddm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
