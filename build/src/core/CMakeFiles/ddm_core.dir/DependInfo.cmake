
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AllocatorFactory.cpp" "src/core/CMakeFiles/ddm_core.dir/AllocatorFactory.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/AllocatorFactory.cpp.o.d"
  "/root/repo/src/core/BoundaryTagHeap.cpp" "src/core/CMakeFiles/ddm_core.dir/BoundaryTagHeap.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/BoundaryTagHeap.cpp.o.d"
  "/root/repo/src/core/DDmalloc.cpp" "src/core/CMakeFiles/ddm_core.dir/DDmalloc.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/DDmalloc.cpp.o.d"
  "/root/repo/src/core/GlibcModelAllocator.cpp" "src/core/CMakeFiles/ddm_core.dir/GlibcModelAllocator.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/GlibcModelAllocator.cpp.o.d"
  "/root/repo/src/core/HoardModel.cpp" "src/core/CMakeFiles/ddm_core.dir/HoardModel.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/HoardModel.cpp.o.d"
  "/root/repo/src/core/ObstackAllocator.cpp" "src/core/CMakeFiles/ddm_core.dir/ObstackAllocator.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/ObstackAllocator.cpp.o.d"
  "/root/repo/src/core/RegionAllocator.cpp" "src/core/CMakeFiles/ddm_core.dir/RegionAllocator.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/RegionAllocator.cpp.o.d"
  "/root/repo/src/core/SizeClasses.cpp" "src/core/CMakeFiles/ddm_core.dir/SizeClasses.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/SizeClasses.cpp.o.d"
  "/root/repo/src/core/TCMallocModel.cpp" "src/core/CMakeFiles/ddm_core.dir/TCMallocModel.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/TCMallocModel.cpp.o.d"
  "/root/repo/src/core/TxAllocator.cpp" "src/core/CMakeFiles/ddm_core.dir/TxAllocator.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/TxAllocator.cpp.o.d"
  "/root/repo/src/core/ZendDefaultAllocator.cpp" "src/core/CMakeFiles/ddm_core.dir/ZendDefaultAllocator.cpp.o" "gcc" "src/core/CMakeFiles/ddm_core.dir/ZendDefaultAllocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ddm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
