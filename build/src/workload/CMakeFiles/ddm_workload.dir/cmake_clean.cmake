file(REMOVE_RECURSE
  "CMakeFiles/ddm_workload.dir/TraceGenerator.cpp.o"
  "CMakeFiles/ddm_workload.dir/TraceGenerator.cpp.o.d"
  "CMakeFiles/ddm_workload.dir/WorkloadSpec.cpp.o"
  "CMakeFiles/ddm_workload.dir/WorkloadSpec.cpp.o.d"
  "libddm_workload.a"
  "libddm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
