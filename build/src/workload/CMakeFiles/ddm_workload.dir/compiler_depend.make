# Empty compiler generated dependencies file for ddm_workload.
# This may be replaced when dependencies are built.
