file(REMOVE_RECURSE
  "libddm_workload.a"
)
