# Empty dependencies file for ddm_support.
# This may be replaced when dependencies are built.
