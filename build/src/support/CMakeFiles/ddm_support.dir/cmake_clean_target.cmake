file(REMOVE_RECURSE
  "libddm_support.a"
)
