file(REMOVE_RECURSE
  "CMakeFiles/ddm_support.dir/Arena.cpp.o"
  "CMakeFiles/ddm_support.dir/Arena.cpp.o.d"
  "CMakeFiles/ddm_support.dir/ArgParse.cpp.o"
  "CMakeFiles/ddm_support.dir/ArgParse.cpp.o.d"
  "CMakeFiles/ddm_support.dir/Format.cpp.o"
  "CMakeFiles/ddm_support.dir/Format.cpp.o.d"
  "CMakeFiles/ddm_support.dir/Stats.cpp.o"
  "CMakeFiles/ddm_support.dir/Stats.cpp.o.d"
  "CMakeFiles/ddm_support.dir/Table.cpp.o"
  "CMakeFiles/ddm_support.dir/Table.cpp.o.d"
  "libddm_support.a"
  "libddm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
