# Empty dependencies file for ddm_runtime.
# This may be replaced when dependencies are built.
