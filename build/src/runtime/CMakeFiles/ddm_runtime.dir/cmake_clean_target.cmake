file(REMOVE_RECURSE
  "libddm_runtime.a"
)
