file(REMOVE_RECURSE
  "CMakeFiles/ddm_runtime.dir/TransactionRuntime.cpp.o"
  "CMakeFiles/ddm_runtime.dir/TransactionRuntime.cpp.o.d"
  "libddm_runtime.a"
  "libddm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
