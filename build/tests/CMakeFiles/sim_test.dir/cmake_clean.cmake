file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/CacheReferenceTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/CacheReferenceTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/CacheTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/CacheTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/PerformanceTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/PerformanceTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/PlatformTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/PlatformTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/PrefetcherTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/PrefetcherTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/SimSinkTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/SimSinkTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/TlbTest.cpp.o"
  "CMakeFiles/sim_test.dir/sim/TlbTest.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
