file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/AllocatorContractTest.cpp.o"
  "CMakeFiles/core_test.dir/core/AllocatorContractTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/AllocatorFactoryTest.cpp.o"
  "CMakeFiles/core_test.dir/core/AllocatorFactoryTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/BoundaryTagHeapTest.cpp.o"
  "CMakeFiles/core_test.dir/core/BoundaryTagHeapTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/DDmallocParamTest.cpp.o"
  "CMakeFiles/core_test.dir/core/DDmallocParamTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/DDmallocTest.cpp.o"
  "CMakeFiles/core_test.dir/core/DDmallocTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/HeapVerifierTest.cpp.o"
  "CMakeFiles/core_test.dir/core/HeapVerifierTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/HoardModelTest.cpp.o"
  "CMakeFiles/core_test.dir/core/HoardModelTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/MisuseDeathTest.cpp.o"
  "CMakeFiles/core_test.dir/core/MisuseDeathTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/RegionAllocatorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/RegionAllocatorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/SizeClassesTest.cpp.o"
  "CMakeFiles/core_test.dir/core/SizeClassesTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/TCMallocModelTest.cpp.o"
  "CMakeFiles/core_test.dir/core/TCMallocModelTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
