
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/AllocatorContractTest.cpp" "tests/CMakeFiles/core_test.dir/core/AllocatorContractTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/AllocatorContractTest.cpp.o.d"
  "/root/repo/tests/core/AllocatorFactoryTest.cpp" "tests/CMakeFiles/core_test.dir/core/AllocatorFactoryTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/AllocatorFactoryTest.cpp.o.d"
  "/root/repo/tests/core/BoundaryTagHeapTest.cpp" "tests/CMakeFiles/core_test.dir/core/BoundaryTagHeapTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/BoundaryTagHeapTest.cpp.o.d"
  "/root/repo/tests/core/DDmallocParamTest.cpp" "tests/CMakeFiles/core_test.dir/core/DDmallocParamTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/DDmallocParamTest.cpp.o.d"
  "/root/repo/tests/core/DDmallocTest.cpp" "tests/CMakeFiles/core_test.dir/core/DDmallocTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/DDmallocTest.cpp.o.d"
  "/root/repo/tests/core/HeapVerifierTest.cpp" "tests/CMakeFiles/core_test.dir/core/HeapVerifierTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/HeapVerifierTest.cpp.o.d"
  "/root/repo/tests/core/HoardModelTest.cpp" "tests/CMakeFiles/core_test.dir/core/HoardModelTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/HoardModelTest.cpp.o.d"
  "/root/repo/tests/core/MisuseDeathTest.cpp" "tests/CMakeFiles/core_test.dir/core/MisuseDeathTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/MisuseDeathTest.cpp.o.d"
  "/root/repo/tests/core/RegionAllocatorTest.cpp" "tests/CMakeFiles/core_test.dir/core/RegionAllocatorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/RegionAllocatorTest.cpp.o.d"
  "/root/repo/tests/core/SizeClassesTest.cpp" "tests/CMakeFiles/core_test.dir/core/SizeClassesTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/SizeClassesTest.cpp.o.d"
  "/root/repo/tests/core/TCMallocModelTest.cpp" "tests/CMakeFiles/core_test.dir/core/TCMallocModelTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/TCMallocModelTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/ddm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ddm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ddm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ddm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
